//! The flight recorder: a bounded ring of recent [`Event`]s.
//!
//! The recorder is deliberately boring — one short mutex around a
//! `VecDeque` — because every record is a push plus at most one pop, and
//! snapshots clone only what a debug request asked for.  When the ring is
//! full the **oldest** event is dropped: a flight recorder's job is to
//! hold the most recent history at the moment someone asks "what just
//! happened?".

use crate::event::{now_ms, Event};
use std::sync::Mutex;

/// Filter for [`FlightRecorder::snapshot`]: every `Some` field must match
/// the event exactly; `limit` keeps the newest N matches.
#[derive(Debug, Clone, Default)]
pub struct EventFilter {
    /// Keep only events of this trace (32 hex chars).
    pub trace: Option<String>,
    /// Keep only events of this job id.
    pub job: Option<u64>,
    /// Keep only events of this fleet worker id.
    pub worker: Option<u64>,
    /// Keep only events whose kind starts with this prefix.
    pub kind_prefix: Option<String>,
    /// Most matches to return, newest kept (0 = no limit).
    pub limit: usize,
}

impl EventFilter {
    fn matches(&self, ev: &Event) -> bool {
        self.trace
            .as_ref()
            .is_none_or(|t| ev.trace.as_ref() == Some(t))
            && self.job.is_none_or(|j| ev.job == Some(j))
            && self.worker.is_none_or(|w| ev.worker == Some(w))
            && self
                .kind_prefix
                .as_ref()
                .is_none_or(|p| ev.kind.starts_with(p.as_str()))
    }
}

#[derive(Debug)]
struct Inner {
    buf: std::collections::VecDeque<Event>,
    seq: u64,
    dropped: u64,
}

/// A bounded ring of the most recent events.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            inner: Mutex::new(Inner {
                buf: std::collections::VecDeque::with_capacity(capacity),
                seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records an event, assigning its sequence number (and timestamp, if
    /// the event carries none).  Returns the assigned sequence number.
    pub fn record(&self, mut ev: Event) -> u64 {
        if ev.ts_ms == 0 {
            ev.ts_ms = now_ms();
        }
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        ev.seq = seq;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(ev);
        seq
    }

    /// The matching events in recording order, plus how many events the
    /// ring has dropped to overflow since startup.
    #[must_use]
    pub fn snapshot(&self, filter: &EventFilter) -> (Vec<Event>, u64) {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        let mut events: Vec<Event> = inner
            .buf
            .iter()
            .filter(|ev| filter.matches(ev))
            .cloned()
            .collect();
        if filter.limit > 0 && events.len() > filter.limit {
            events.drain(..events.len() - filter.limit);
        }
        (events, inner.dropped)
    }

    /// Renders the matching events as JSONL (one event per line).
    #[must_use]
    pub fn export_jsonl(&self, filter: &EventFilter) -> String {
        let (events, _) = self.snapshot(filter);
        let mut out = String::new();
        for ev in &events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// How many events the ring has dropped to overflow since startup,
    /// without cloning the buffer (what a metrics scrape wants —
    /// [`FlightRecorder::snapshot`] copies every matching event).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight recorder poisoned").dropped
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_keeps_the_newest_events() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.record(Event::new("tick").with_job(i));
        }
        let (events, dropped) = ring.snapshot(&EventFilter::default());
        assert_eq!(dropped, 6);
        assert_eq!(ring.dropped(), 6, "cheap accessor agrees with snapshot");
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "the ring must shed the oldest events, never the newest"
        );
        assert_eq!(
            events.iter().map(|e| e.job).collect::<Vec<_>>(),
            vec![Some(6), Some(7), Some(8), Some(9)]
        );
    }

    #[test]
    fn filters_are_conjunctive_and_limit_keeps_newest() {
        let ring = FlightRecorder::new(64);
        let trace = "f".repeat(32);
        for i in 0..8 {
            ring.record(
                Event::new(if i % 2 == 0 {
                    "job.start"
                } else {
                    "lease.grant"
                })
                .with_trace((i % 2 == 0).then(|| trace.clone()))
                .with_job(i)
                .with_worker(i % 3),
            );
        }
        let (by_trace, _) = ring.snapshot(&EventFilter {
            trace: Some(trace.clone()),
            ..EventFilter::default()
        });
        assert_eq!(by_trace.len(), 4);
        assert!(by_trace.iter().all(|e| e.kind == "job.start"));

        let (both, _) = ring.snapshot(&EventFilter {
            trace: Some(trace),
            worker: Some(0),
            ..EventFilter::default()
        });
        assert_eq!(
            both.iter().map(|e| e.job).collect::<Vec<_>>(),
            vec![Some(0), Some(6)]
        );

        let (limited, _) = ring.snapshot(&EventFilter {
            kind_prefix: Some("lease.".to_owned()),
            limit: 2,
            ..EventFilter::default()
        });
        assert_eq!(
            limited.iter().map(|e| e.job).collect::<Vec<_>>(),
            vec![Some(5), Some(7)]
        );
    }

    #[test]
    fn jsonl_export_is_one_line_per_event() {
        let ring = FlightRecorder::new(8);
        ring.record(Event::new("a"));
        ring.record(Event::new("b").with_detail("x\ny"));
        let jsonl = ring.export_jsonl(&EventFilter::default());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2, "embedded newlines must be escaped");
        assert!(lines[1].contains("x\\ny"));
    }
}
