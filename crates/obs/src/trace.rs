//! Trace identifiers: 128 bits, rendered as 32 lowercase hex characters.
//!
//! Generation needs no external randomness source: each id mixes the
//! process's `RandomState` hash keys (seeded by the OS), the wall clock,
//! and a process-wide counter, so ids are unique across processes and
//! across rapid calls within one process.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// A 128-bit trace id.
///
/// The wire form (header value, query parameter, event field) is exactly
/// 32 lowercase hex characters; [`TraceId::parse`] also accepts uppercase
/// input and normalises it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u128);

static COUNTER: AtomicU64 = AtomicU64::new(0);

impl TraceId {
    /// Generates a fresh id.
    #[must_use]
    pub fn generate() -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos());
        let word = |salt: u64| {
            // A fresh RandomState draws new (OS-seeded) SipHash keys, so
            // two processes started in the same nanosecond still diverge.
            let mut h = RandomState::new().build_hasher();
            h.write_u64(salt);
            h.write_u64(n);
            h.write_u128(nanos);
            h.finish()
        };
        let id = (u128::from(word(0x9e37_79b9_7f4a_7c15)) << 64) | u128::from(word(0x6a09_e667));
        // Zero is reserved as "absent"; remap the astronomically unlikely hit.
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Parses a 32-hex-char wire form (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16)
            .ok()
            .filter(|&v| v != 0)
            .map(TraceId)
    }

    /// The canonical wire form: 32 lowercase hex characters.
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_valid_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let id = TraceId::generate();
            let hex = id.to_hex();
            assert_eq!(hex.len(), 32);
            assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
            assert_eq!(TraceId::parse(&hex), Some(id));
            assert!(seen.insert(id), "duplicate trace id {hex}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TraceId::parse("").is_none());
        assert!(TraceId::parse("abc").is_none());
        assert!(
            TraceId::parse(&"0".repeat(32)).is_none(),
            "zero is reserved"
        );
        assert!(TraceId::parse(&"g".repeat(32)).is_none());
        assert!(TraceId::parse(&"a".repeat(33)).is_none());
        let upper = "ABCDEF0123456789ABCDEF0123456789";
        assert_eq!(
            TraceId::parse(upper).map(|t| t.to_hex()),
            Some(upper.to_lowercase())
        );
    }
}
