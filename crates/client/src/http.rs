//! A minimal blocking HTTP/1.1 client over [`std::net::TcpStream`] — the
//! transport under [`crate::SimdsimClient`].
//!
//! One [`HttpClient`] holds one keep-alive connection; requests on it are
//! serial, which is exactly the per-thread shape a load generator or CLI
//! wants.  (This module moved here from `simdsim-serve` when the typed
//! client was introduced, so the serving crate no longer ships any client
//! code.)

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// The response headers, in wire order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The first header named `name` (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connects to `addr` with `timeout` applied to reads and writes.
    ///
    /// # Errors
    ///
    /// Propagates resolution/connection errors.
    pub fn connect(
        addr: impl ToSocketAddrs + std::fmt::Display,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let host = addr.to_string();
        let stream = TcpStream::connect(&addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        // Small request/response exchanges; Nagle would serialize them
        // against delayed ACKs at ~40ms a round trip.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            host,
        })
    }

    /// Sends a bodyless request and reads the full response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn request(&mut self, method: &str, path: &str) -> std::io::Result<HttpResponse> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\r\n",
            self.host
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a `GET` and reads the full response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path)
    }

    /// Sends a `DELETE` and reads the full response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn delete(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("DELETE", path)
    }

    /// Sends a `POST` with a JSON body and reads the full response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.send_json("POST", path, body)
    }

    /// Sends a `PUT` with a JSON body and reads the full response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn put(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.send_json("PUT", path, body)
    }

    /// Sends any method with a JSON body and reads the full response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn send_json(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<HttpResponse> {
        self.send_json_with_headers(method, path, body, &[])
    }

    /// [`HttpClient::send_json`] plus extra request headers (name, value).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses.
    pub fn send_json_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        let mut extra = String::new();
        for (name, value) in headers {
            extra.push_str(name);
            extra.push_str(": ");
            extra.push_str(value);
            extra.push_str("\r\n");
        }
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n{extra}\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            self.host,
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("malformed status line `{status_line}`")))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad Content-Length `{value}`")))?;
                }
                headers.push((name.trim().to_owned(), value.trim().to_owned()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
