//! `sweepctl` — command-line client for the simdsim v1 sweep API.
//!
//! ```console
//! $ sweepctl health
//! $ sweepctl scenarios
//! $ sweepctl submit --scenario fig4 --filter /idct/
//! $ sweepctl submit --batch sweeps.json              # many sweeps, one request
//! $ sweepctl run --scenario fig4 --filter /idct/     # submit + stream + summary
//! $ sweepctl stream 3                                # follow an existing job
//! $ sweepctl status 3
//! $ sweepctl watch 3                                 # live progress until terminal
//! $ sweepctl top                                     # live fleet dashboard
//! $ sweepctl cancel 3
//! $ sweepctl list
//! $ sweepctl worker --name w1 --slots 2              # join the fleet
//! $ sweepctl fleet status                            # who's in the fleet
//! $ sweepctl store export > snap.json                # share the result store
//! $ sweepctl store import snap.json
//! $ sweepctl --json list                             # one JSON object per line
//! ```
//!
//! Exit codes: `0` success, `1` the job failed or was cancelled (for
//! `submit --batch`: any item rejected), `2` usage/transport/API errors.

use simdsim_api::{
    CellResult, FleetStatus, ProfileResponse, Scenario, StoreSnapshot, SweepRequest, SweepStatus,
};
use simdsim_client::{run_worker, ClientError, SimdsimClient, WorkerConfig};
use simdsim_obs::quantile_from_buckets;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Prints a line to stdout, ignoring broken-pipe errors: `sweepctl ... |
/// grep -q` closes the pipe early, which must not be a panic.
fn say(line: std::fmt::Arguments) {
    use std::io::Write as _;
    let mut out = std::io::stdout();
    let _ = out.write_fmt(line);
    let _ = out.write_all(b"\n");
}

/// [`say`] for stderr (progress notes, summaries).
fn esay(line: std::fmt::Arguments) {
    use std::io::Write as _;
    let mut out = std::io::stderr();
    let _ = out.write_fmt(line);
    let _ = out.write_all(b"\n");
}

const USAGE: &str = "\
usage: sweepctl [--addr HOST:PORT] [--timeout SECS] [--json] COMMAND [ARGS]

Drive a simdsim-serve daemon through the typed v1 client.

commands:
  health                     liveness + API version + queue depth
  scenarios                  list catalog + user scenarios
  list                       list every job the server knows
  submit [SWEEP OPTIONS]     submit a sweep, print its id, return
  submit --batch PATH        submit a JSON array of sweeps in one request
  run    [SWEEP OPTIONS]     submit, stream cells as they resolve, summarise
  status ID                  one job's status document (JSON)
  profile ID                 the job's aggregated CPI stack as a table
  stream ID                  follow a job's per-cell stream to completion
  watch  ID                  poll a job's progress live until it finishes
  top                        live fleet dashboard (/metrics + /v1/workers)
  cancel ID                  cancel a queued/running job
  worker [WORKER OPTIONS]    join the daemon's fleet and simulate leased cells
  fleet status               list the fleet: workers, liveness, pending cells
  store export               print the server's result-store snapshot (JSON)
  store import PATH          import a snapshot file (`-` reads stdin)
sweep options:
  --scenario NAME            a catalog/user scenario by name
  --file PATH                an inline scenario from a JSON document
  --filter SUBSTRING         keep only cells whose label matches
worker options:
  --name NAME                worker name shown in fleet status (default: worker)
  --slots N                  concurrent simulation slots (default: all cores)
  --cache-dir DIR            local content-addressed store for leased cells
  --warm-start               seed --cache-dir from the server's snapshot
global options:
  --addr HOST:PORT           daemon address (default 127.0.0.1:8844)
  --timeout SECS             per-request socket timeout (default 300)
  --json                     machine output: one JSON object per line
  --help                     print this help";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match main_impl(&args) {
        Ok(code) => code,
        Err(msg) => {
            esay(format_args!("sweepctl: {msg}"));
            2
        }
    };
    std::process::exit(code);
}

struct Global {
    addr: String,
    timeout: Duration,
    json: bool,
}

/// Prints one DTO as a single JSON line (the `--json` output contract).
fn jline<T: serde::Serialize>(dto: &T) {
    say(format_args!(
        "{}",
        serde_json::to_string(dto).expect("DTO serializes")
    ));
}

fn main_impl(args: &[String]) -> Result<i32, String> {
    let mut global = Global {
        addr: "127.0.0.1:8844".to_owned(),
        timeout: Duration::from_secs(300),
        json: false,
    };
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => global.addr = value("--addr")?,
            "--timeout" => {
                let v = value("--timeout")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got `{v}`"))?;
                global.timeout = Duration::from_secs(secs.max(1));
            }
            "--json" => global.json = true,
            "--help" | "-h" => {
                say(format_args!("{USAGE}"));
                return Ok(0);
            }
            _ => rest.push(a.clone()),
        }
    }
    let Some((command, cmd_args)) = rest.split_first() else {
        return Err(format!("a command is required\n{USAGE}"));
    };

    // The worker runs its own connection loop (registration, leases).
    if command == "worker" {
        return run_worker_command(&global, cmd_args);
    }

    let mut client = SimdsimClient::connect(&global.addr, global.timeout)
        .map_err(|e| format!("connecting to {}: {e}", global.addr))?;
    let fail = |e: ClientError| e.to_string();

    match command.as_str() {
        "health" => {
            let h = client.health().map_err(fail)?;
            if global.json {
                jline(&h);
            } else {
                say(format_args!(
                    "{} (api {}, queue depth {})",
                    h.status, h.version, h.queue_depth
                ));
            }
            Ok(0)
        }
        "scenarios" => {
            let list = client.scenarios().map_err(fail)?;
            for s in &list {
                if global.json {
                    jline(s);
                } else {
                    say(format_args!(
                        "{:<16} {:>4} cells  [{}]  {}",
                        s.name, s.cells, s.source, s.description
                    ));
                }
            }
            Ok(0)
        }
        "list" => {
            let list = client.list().map_err(fail)?;
            for j in &list.jobs {
                if global.json {
                    jline(j);
                } else {
                    say(format_args!(
                        "#{:<6} {:<10} {:>4}/{:<4} cells  {}{}",
                        j.id,
                        j.state,
                        j.progress.completed,
                        j.progress.total,
                        j.scenario,
                        j.filter
                            .as_deref()
                            .map(|f| format!("  filter={f}"))
                            .unwrap_or_default()
                    ));
                }
            }
            Ok(0)
        }
        "submit" if cmd_args.first().is_some_and(|a| a == "--batch") => {
            let [_, path] = cmd_args else {
                return Err("submit --batch expects exactly one PATH".to_owned());
            };
            let text = read_input(path)?;
            let sweeps: Vec<SweepRequest> = serde_json::from_str(&text)
                .map_err(|e| format!("parsing {path} as a JSON array of sweeps: {e}"))?;
            let batch = client.submit_batch(&sweeps).map_err(fail)?;
            let mut rejected = 0;
            for (i, item) in batch.items.iter().enumerate() {
                if global.json {
                    jline(item);
                    if item.error.is_some() {
                        rejected += 1;
                    }
                    continue;
                }
                match (&item.submit, &item.error) {
                    (Some(sub), _) => say(format_args!(
                        "[{i}] job {} {} ({}{})",
                        sub.id,
                        sub.url,
                        sub.state,
                        if sub.deduped { ", deduped" } else { "" }
                    )),
                    (None, Some(e)) => {
                        rejected += 1;
                        say(format_args!("[{i}] rejected: {e}"));
                    }
                    (None, None) => say(format_args!("[{i}] malformed batch item")),
                }
            }
            Ok(i32::from(rejected > 0))
        }
        "submit" => {
            let request = parse_sweep_request(cmd_args)?;
            let sub = client.submit(&request).map_err(fail)?;
            if global.json {
                jline(&sub);
            } else {
                say(format_args!(
                    "job {} {} ({}{}){}",
                    sub.id,
                    sub.url,
                    sub.state,
                    if sub.deduped { ", deduped" } else { "" },
                    trace_suffix(sub.trace.as_deref())
                ));
            }
            Ok(0)
        }
        "run" => {
            let request = parse_sweep_request(cmd_args)?;
            let sub = client.submit(&request).map_err(fail)?;
            if global.json {
                jline(&sub);
            } else {
                esay(format_args!(
                    "submitted job {}{}{}",
                    sub.id,
                    if sub.deduped {
                        " (deduped onto an identical in-flight job)"
                    } else {
                        ""
                    },
                    trace_suffix(sub.trace.as_deref())
                ));
            }
            let on_cell = cell_printer(global.json);
            let status = client.stream_cells(sub.id, on_cell).map_err(fail)?;
            Ok(summarise(&status, global.json))
        }
        "status" => {
            let id = parse_id(cmd_args)?;
            let status = client.status(id).map_err(fail)?;
            if global.json {
                jline(&status);
            } else {
                say(format_args!(
                    "{}",
                    serde_json::to_string_pretty(&status).expect("status serializes")
                ));
            }
            Ok(0)
        }
        "profile" => {
            let id = parse_id(cmd_args)?;
            let p = client.profile(id).map_err(fail)?;
            if global.json {
                jline(&p);
            } else {
                render_profile(&p);
            }
            Ok(0)
        }
        "stream" => {
            let id = parse_id(cmd_args)?;
            let on_cell = cell_printer(global.json);
            let status = client.stream_cells(id, on_cell).map_err(fail)?;
            Ok(summarise(&status, global.json))
        }
        "watch" => {
            let id = parse_id(cmd_args)?;
            watch_command(&mut client, id, global.json)
        }
        "top" => top_command(&mut client, &global),
        "cancel" => {
            let id = parse_id(cmd_args)?;
            let status = client.cancel(id).map_err(fail)?;
            if global.json {
                jline(&status);
            } else {
                say(format_args!("job {} is now {}", id, status.state));
            }
            Ok(0)
        }
        "fleet" => {
            if cmd_args != ["status".to_owned()] {
                return Err(format!("usage: sweepctl fleet status\n{USAGE}"));
            }
            let fleet = client.fleet_status().map_err(fail)?;
            if global.json {
                jline(&fleet);
                return Ok(0);
            }
            say(format_args!(
                "{} workers, {} pending cells",
                fleet.workers.len(),
                fleet.pending_cells
            ));
            for w in &fleet.workers {
                say(format_args!(
                    "#{:<4} {:<16} {:<5} slots {:>2}  leased {:>4}  completed {:>6}  seen {}ms ago",
                    w.id,
                    w.name,
                    if w.live { "live" } else { "dead" },
                    w.slots,
                    w.leased,
                    w.completed,
                    w.last_seen_ms
                ));
            }
            Ok(0)
        }
        "store" => match cmd_args {
            [sub] if sub == "export" => {
                let snapshot = client.store_export().map_err(fail)?;
                // The snapshot *is* the JSON artifact in either mode.
                jline(&snapshot);
                Ok(0)
            }
            [sub, path] if sub == "import" => {
                let text = read_input(path)?;
                let snapshot: StoreSnapshot = serde_json::from_str(&text)
                    .map_err(|e| format!("parsing {path} as a store snapshot: {e}"))?;
                let imported = client.store_import(&snapshot).map_err(fail)?;
                if global.json {
                    jline(&imported);
                } else {
                    say(format_args!(
                        "imported {} cells ({} skipped)",
                        imported.imported, imported.skipped
                    ));
                }
                Ok(0)
            }
            _ => Err(format!(
                "usage: sweepctl store export | store import PATH\n{USAGE}"
            )),
        },
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// `sweepctl worker ...` — joins the fleet and simulates until killed.
fn run_worker_command(global: &Global, args: &[String]) -> Result<i32, String> {
    let mut cfg = WorkerConfig {
        addr: global.addr.clone(),
        timeout: global.timeout,
        ..WorkerConfig::default()
    };
    let mut slots_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--name" => cfg.name = value("--name")?,
            "--slots" => {
                let v = value("--slots")?;
                cfg.slots = v
                    .parse()
                    .map_err(|_| format!("--slots expects a number, got `{v}`"))?;
                slots_set = true;
            }
            "--cache-dir" => cfg.cache_dir = Some(value("--cache-dir")?.into()),
            "--warm-start" => cfg.warm_start = true,
            flag => return Err(format!("unknown worker option `{flag}`")),
        }
    }
    if !slots_set {
        // One slot per core: a worker's slots are both its concurrency
        // and its cells-per-lease, so the machine's parallelism is the
        // right default for a box someone just typed `sweepctl worker` on.
        cfg.slots = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    }
    if cfg.warm_start && cfg.cache_dir.is_none() {
        return Err("--warm-start needs --cache-dir".to_owned());
    }
    esay(format_args!(
        "worker `{}` joining fleet at {} ({} slots)",
        cfg.name, cfg.addr, cfg.slots
    ));
    // The worker runs until the process is killed; lease expiry and
    // eviction on the coordinator clean up after any exit.
    let stop = AtomicBool::new(false);
    run_worker(&cfg, &stop).map_err(|e| e.to_string())?;
    Ok(0)
}

/// `sweepctl profile ID` — renders the job's aggregated CPI stack as a
/// table: the issue row first, then every stall row largest-first, each
/// with its share of the job's total commit slots.  The shares sum to
/// 100% by the model's accounting invariant
/// (`issue + Σ stalls == cycles × way`).
fn render_profile(p: &ProfileResponse) {
    say(format_args!(
        "job {} {} — {} cells profiled, {} without a stack",
        p.id, p.state, p.cells, p.missing
    ));
    let Some(prof) = &p.profile else {
        say(format_args!(
            "no profile yet (no profiled cell has resolved — job queued, \
             profiling off, or results cached by a pre-profiler build)"
        ));
        return;
    };
    let way = if prof.way == 0 {
        "mixed".to_owned()
    } else {
        prof.way.to_string()
    };
    say(format_args!(
        "cycles {}  commit slots {}  way {}  cpi {:.3}",
        prof.cycles, prof.slots, way, prof.cpi
    ));
    let pct = |slots: u64| 100.0 * slots as f64 / prof.slots.max(1) as f64;
    say(format_args!(
        "{:<16} {:<8} {:>14} {:>7}",
        "cause", "region", "slots", "share"
    ));
    say(format_args!(
        "{:<16} {:<8} {:>14} {:>6.1}%",
        "issue",
        "-",
        prof.issue,
        pct(prof.issue)
    ));
    for e in &prof.stalls {
        say(format_args!(
            "{:<16} {:<8} {:>14} {:>6.1}%",
            e.cause,
            e.region,
            e.slots,
            pct(e.slots)
        ));
    }
    let classes: Vec<String> = prof
        .classes
        .iter()
        .map(|c| format!("{} {}", c.class, c.slots))
        .collect();
    say(format_args!("retired by class: {}", classes.join("  ")));
}

/// The polling core shared by `watch` and `top`: runs `tick` every
/// `interval` until it asks to stop (`Ok(false)`) or fails.
fn poll_loop(
    interval: Duration,
    mut tick: impl FnMut() -> Result<bool, String>,
) -> Result<(), String> {
    loop {
        if !tick()? {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// The trailing `  trace=...` of a human submit line (empty when the
/// server predates trace ids).
fn trace_suffix(trace: Option<&str>) -> String {
    trace.map(|t| format!("  trace={t}")).unwrap_or_default()
}

/// `sweepctl watch ID` — polls the job's status until it reaches a
/// terminal state.  Human mode rewrites one progress line in place;
/// `--json` prints one status document per poll, the exact stream a
/// supervisor would tail.
fn watch_command(client: &mut SimdsimClient, id: u64, json: bool) -> Result<i32, String> {
    use std::io::Write as _;
    let mut last_state = simdsim_api::JobState::Queued;
    let mut failed_polls = 0u32;
    poll_loop(Duration::from_millis(500), || {
        let status = match client.status(id) {
            Ok(s) => {
                failed_polls = 0;
                s
            }
            // A definitive "no such job" can't heal; stop immediately.
            // Anything else (restarting server, transient 5xx) gets a few
            // retries before the watch gives up.
            Err(e) => {
                if e.api_error()
                    .is_some_and(|err| err.code == simdsim_api::ErrorCode::UnknownJob)
                {
                    return Err(e.to_string());
                }
                failed_polls += 1;
                if failed_polls >= 5 {
                    return Err(format!("{e} ({failed_polls} consecutive failed polls)"));
                }
                if !json {
                    let mut out = std::io::stdout();
                    let _ = write!(out, "\r\x1b[2Kjob {id} n/a        (poll failed, retrying)");
                    let _ = out.flush();
                }
                return Ok(true);
            }
        };
        last_state = status.state;
        if json {
            jline(&status);
        } else {
            let mut out = std::io::stdout();
            let _ = write!(
                out,
                "\r\x1b[2Kjob {} {:<10} {:>4}/{:<4} cells ({} cached)",
                status.id,
                status.state.to_string(),
                status.progress.completed,
                status.progress.total,
                status.progress.cached
            );
            let _ = out.flush();
        }
        Ok(!status.state.is_terminal())
    })?;
    if !json {
        say(format_args!(""));
    }
    Ok(i32::from(last_state != simdsim_api::JobState::Done))
}

/// One refresh of the `top` dashboard, scraped from `/metrics` and
/// `GET /v1/workers`.  Latency quantiles come from the Prometheus
/// histogram buckets, so they match what any other scraper would derive.
/// Every field is optional: a family missing from the scrape, or a
/// fleet listing the server does not serve, renders as `n/a` (and as
/// `null` under `--json`) instead of killing the poll loop.
#[derive(serde::Serialize)]
struct TopSnapshot {
    queue_depth: Option<u64>,
    pending_cells: Option<u64>,
    workers_live: Option<u64>,
    workers_total: Option<u64>,
    simulated_mips: Option<f64>,
    blocks_predecoded: Option<u64>,
    block_fused_hits: Option<u64>,
    block_side_exits: Option<u64>,
    http_requests: Option<u64>,
    http_p50_ms: Option<f64>,
    http_p99_ms: Option<f64>,
    reports: Option<u64>,
    report_p50_ms: Option<f64>,
    report_p99_ms: Option<f64>,
}

impl TopSnapshot {
    fn from_scrape(metrics: &str, fleet: Option<&FleetStatus>) -> Self {
        let http = histogram_quantiles(metrics, "simdsim_http_request_duration_ms");
        let report = histogram_quantiles(metrics, "simdsim_fleet_report_latency_ms");
        TopSnapshot {
            queue_depth: parse_gauge(metrics, "simdsim_queue_depth").map(|v| v as u64),
            pending_cells: fleet.map(|f| f.pending_cells),
            workers_live: fleet.map(|f| f.workers.iter().filter(|w| w.live).count() as u64),
            workers_total: fleet.map(|f| f.workers.len() as u64),
            simulated_mips: parse_gauge(metrics, "simdsim_simulated_mips"),
            blocks_predecoded: parse_labelled(
                metrics,
                "simdsim_superblocks_total",
                "event=\"predecoded\"",
            )
            .map(|v| v as u64),
            block_fused_hits: parse_labelled(
                metrics,
                "simdsim_superblocks_total",
                "event=\"fused_hit\"",
            )
            .map(|v| v as u64),
            block_side_exits: parse_labelled(
                metrics,
                "simdsim_superblocks_total",
                "event=\"side_exit\"",
            )
            .map(|v| v as u64),
            http_requests: http.map(|(n, _, _)| n),
            http_p50_ms: http.map(|(_, p50, _)| p50),
            http_p99_ms: http.map(|(_, _, p99)| p99),
            reports: report.map(|(n, _, _)| n),
            report_p50_ms: report.map(|(_, p50, _)| p50),
            report_p99_ms: report.map(|(_, _, p99)| p99),
        }
    }
}

/// `Some` rendered to `places` decimals, `None` as `n/a`.
fn or_na_f(v: Option<f64>, places: usize) -> String {
    v.map_or_else(|| "n/a".to_owned(), |x| format!("{x:.places$}"))
}

/// `Some` rendered with `Display`, `None` as `n/a`.
fn or_na<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "n/a".to_owned(), |x| x.to_string())
}

/// The sample of one labelled counter series (`name{label} value`),
/// `None` when the series is absent from the scrape.
fn parse_labelled(metrics: &str, name: &str, label: &str) -> Option<f64> {
    let prefix = format!("{name}{{{label}}} ");
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(&prefix)?.trim().parse().ok())
}

/// The first sample of an unlabelled gauge/counter family, `None` when
/// the family is absent from the scrape.
fn parse_gauge(metrics: &str, name: &str) -> Option<f64> {
    metrics.lines().find_map(|line| {
        line.strip_prefix(name)?
            .strip_prefix(' ')?
            .trim()
            .parse()
            .ok()
    })
}

/// Total count plus (p50, p99) of one Prometheus histogram family,
/// summing `_bucket` series across label sets (valid because every series
/// of a family shares the same `le` bounds).  `None` when the family is
/// absent from the scrape.
fn histogram_quantiles(metrics: &str, family: &str) -> Option<(u64, f64, f64)> {
    let prefix = format!("{family}_bucket{{");
    let mut finite: Vec<(f64, u64)> = Vec::new();
    let mut inf = 0u64;
    let mut seen = false;
    for line in metrics.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else {
            continue;
        };
        let Some((labels, value)) = rest.rsplit_once("} ") else {
            continue;
        };
        let Some(le) = labels
            .split("le=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
        else {
            continue;
        };
        let Ok(count) = value.trim().parse::<u64>() else {
            continue;
        };
        seen = true;
        if le == "+Inf" {
            inf += count;
        } else if let Ok(bound) = le.parse::<f64>() {
            match finite.iter_mut().find(|(b, _)| *b == bound) {
                Some((_, c)) => *c += count,
                None => finite.push((bound, count)),
            }
        }
    }
    if !seen {
        return None;
    }
    finite.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite le bounds"));
    let bounds: Vec<f64> = finite.iter().map(|(b, _)| *b).collect();
    let mut cumulative: Vec<u64> = finite.iter().map(|(_, c)| *c).collect();
    cumulative.push(inf);
    let count = inf;
    Some((
        count,
        quantile_from_buckets(&bounds, &cumulative, 0.50),
        quantile_from_buckets(&bounds, &cumulative, 0.99),
    ))
}

/// `sweepctl top` — a live dashboard over `/metrics` and `/v1/workers`,
/// redrawn once a second until interrupted.  `--json` prints one
/// [`TopSnapshot`] per poll instead of drawing.
///
/// The dashboard degrades rather than dies: a server that answers the
/// fleet listing with an API error (say, a build without `/v1/workers`)
/// or serves `/metrics` without some family just shows `n/a` for those
/// values.  Only transport failures — the server actually going away —
/// end the poll loop.
fn top_command(client: &mut SimdsimClient, global: &Global) -> Result<i32, String> {
    poll_loop(Duration::from_millis(1000), || {
        let fleet = match client.fleet_status() {
            Ok(f) => Some(f),
            Err(e @ ClientError::Io(_)) => return Err(e.to_string()),
            Err(_) => None,
        };
        let resp = client
            .http()
            .get("/metrics")
            .map_err(|e| format!("scraping /metrics: {e}"))?;
        // A non-200 scrape is treated like an empty one: every
        // metrics-derived field goes n/a for this frame.
        let body = if resp.status == 200 {
            resp.body_str()
        } else {
            String::new()
        };
        let snap = TopSnapshot::from_scrape(&body, fleet.as_ref());
        if global.json {
            jline(&snap);
        } else {
            render_top(&snap, fleet.as_ref(), &global.addr);
        }
        Ok(true)
    })?;
    Ok(0)
}

/// Clears the terminal and draws one frame of the `top` dashboard.
fn render_top(snap: &TopSnapshot, fleet: Option<&FleetStatus>, addr: &str) {
    say(format_args!("\x1b[2J\x1b[Hsimdsim top — {addr}"));
    say(format_args!(
        "queue depth {:>6}    pending cells {:>6}    simulated {:>9} mips",
        or_na(snap.queue_depth),
        or_na(snap.pending_cells),
        or_na_f(snap.simulated_mips, 1)
    ));
    say(format_args!(
        "blocks {:>6} predecoded   {:>9} fused hits   {:>6} side exits",
        or_na(snap.blocks_predecoded),
        or_na(snap.block_fused_hits),
        or_na(snap.block_side_exits)
    ));
    say(format_args!(
        "http   latency  p50 {:>8}ms  p99 {:>8}ms   over {} requests",
        or_na_f(snap.http_p50_ms, 2),
        or_na_f(snap.http_p99_ms, 2),
        or_na(snap.http_requests)
    ));
    say(format_args!(
        "report latency  p50 {:>8}ms  p99 {:>8}ms   over {} reports",
        or_na_f(snap.report_p50_ms, 2),
        or_na_f(snap.report_p99_ms, 2),
        or_na(snap.reports)
    ));
    say(format_args!(
        "fleet  {}/{} workers live",
        or_na(snap.workers_live),
        or_na(snap.workers_total)
    ));
    let Some(fleet) = fleet else {
        say(format_args!("  (worker listing unavailable)"));
        return;
    };
    for w in &fleet.workers {
        say(format_args!(
            "  #{:<4} {:<16} {:<5} slots {:>2}  leased {:>4}  completed {:>6}  seen {}ms ago",
            w.id,
            w.name,
            if w.live { "live" } else { "dead" },
            w.slots,
            w.leased,
            w.completed,
            w.last_seen_ms
        ));
    }
}

/// Reads a file argument, with `-` meaning stdin.
fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        use std::io::Read as _;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn parse_id(args: &[String]) -> Result<u64, String> {
    match args {
        [id] => id
            .parse()
            .map_err(|_| format!("job id must be an integer, got `{id}`")),
        _ => Err("expected exactly one job id".to_owned()),
    }
}

fn parse_sweep_request(args: &[String]) -> Result<SweepRequest, String> {
    let mut request = SweepRequest::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--scenario" => request.scenario = Some(value("--scenario")?),
            "--filter" => request.filter = Some(value("--filter")?),
            "--file" => {
                let path = value("--file")?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
                let scenario: Scenario =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                request.inline = Some(scenario);
            }
            flag => return Err(format!("unknown sweep option `{flag}`")),
        }
    }
    request.validate()?;
    Ok(request)
}

/// The per-cell printer for `run`/`stream`: JSON lines or the human table.
fn cell_printer(json: bool) -> fn(&CellResult) {
    if json {
        |cell| jline(cell)
    } else {
        print_cell
    }
}

fn print_cell(cell: &CellResult) {
    match (&cell.error, cell.mips) {
        (Some(e), _) => say(format_args!("{:<48} ERROR {e}", cell.label)),
        (None, Some(mips)) => {
            let stats = cell.stats.as_ref().expect("successful cell has stats");
            say(format_args!(
                "{:<48} {:>12} cycles  ipc {:>5.2}  {:>7.1} mips",
                cell.label, stats.cycles, stats.ipc, mips
            ));
        }
        (None, None) => {
            let stats = cell.stats.as_ref().expect("successful cell has stats");
            say(format_args!(
                "{:<48} {:>12} cycles  ipc {:>5.2}   cached",
                cell.label, stats.cycles, stats.ipc
            ));
        }
    }
}

fn summarise(status: &SweepStatus, json: bool) -> i32 {
    if json {
        jline(status);
        return i32::from(status.state != simdsim_api::JobState::Done);
    }
    match &status.result {
        Some(result) => {
            esay(format_args!(
                "job {}: {} — {} cells ({} cached, {} simulated, {} failed), {:.1}ms simulated",
                status.id,
                status.state,
                result.cells.len(),
                result.cached,
                result.executed,
                result.failed,
                result.simulated_wall_ms,
            ));
        }
        None => esay(format_args!("job {}: {}", status.id, status.state)),
    }
    i32::from(status.state != simdsim_api::JobState::Done)
}
