//! `sweepctl` — command-line client for the simdsim v1 sweep API.
//!
//! ```console
//! $ sweepctl health
//! $ sweepctl scenarios
//! $ sweepctl submit --scenario fig4 --filter /idct/
//! $ sweepctl run --scenario fig4 --filter /idct/     # submit + stream + summary
//! $ sweepctl stream 3                                # follow an existing job
//! $ sweepctl status 3
//! $ sweepctl cancel 3
//! $ sweepctl list
//! ```
//!
//! Exit codes: `0` success, `1` the job failed or was cancelled, `2`
//! usage/transport/API errors.

use simdsim_api::{CellResult, Scenario, SweepRequest, SweepStatus};
use simdsim_client::{ClientError, SimdsimClient};
use std::time::Duration;

/// Prints a line to stdout, ignoring broken-pipe errors: `sweepctl ... |
/// grep -q` closes the pipe early, which must not be a panic.
fn say(line: std::fmt::Arguments) {
    use std::io::Write as _;
    let mut out = std::io::stdout();
    let _ = out.write_fmt(line);
    let _ = out.write_all(b"\n");
}

/// [`say`] for stderr (progress notes, summaries).
fn esay(line: std::fmt::Arguments) {
    use std::io::Write as _;
    let mut out = std::io::stderr();
    let _ = out.write_fmt(line);
    let _ = out.write_all(b"\n");
}

const USAGE: &str = "\
usage: sweepctl [--addr HOST:PORT] [--timeout SECS] COMMAND [ARGS]

Drive a simdsim-serve daemon through the typed v1 client.

commands:
  health                     liveness + API version + queue depth
  scenarios                  list catalog + user scenarios
  list                       list every job the server knows
  submit [SWEEP OPTIONS]     submit a sweep, print its id, return
  run    [SWEEP OPTIONS]     submit, stream cells as they resolve, summarise
  status ID                  one job's status document (JSON)
  stream ID                  follow a job's per-cell stream to completion
  cancel ID                  cancel a queued/running job
sweep options:
  --scenario NAME            a catalog/user scenario by name
  --file PATH                an inline scenario from a JSON document
  --filter SUBSTRING         keep only cells whose label matches
global options:
  --addr HOST:PORT           daemon address (default 127.0.0.1:8844)
  --timeout SECS             per-request socket timeout (default 300)
  --help                     print this help";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match main_impl(&args) {
        Ok(code) => code,
        Err(msg) => {
            esay(format_args!("sweepctl: {msg}"));
            2
        }
    };
    std::process::exit(code);
}

struct Global {
    addr: String,
    timeout: Duration,
}

fn main_impl(args: &[String]) -> Result<i32, String> {
    let mut global = Global {
        addr: "127.0.0.1:8844".to_owned(),
        timeout: Duration::from_secs(300),
    };
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => global.addr = value("--addr")?,
            "--timeout" => {
                let v = value("--timeout")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got `{v}`"))?;
                global.timeout = Duration::from_secs(secs.max(1));
            }
            "--help" | "-h" => {
                say(format_args!("{USAGE}"));
                return Ok(0);
            }
            _ => rest.push(a.clone()),
        }
    }
    let Some((command, cmd_args)) = rest.split_first() else {
        return Err(format!("a command is required\n{USAGE}"));
    };

    let mut client = SimdsimClient::connect(&global.addr, global.timeout)
        .map_err(|e| format!("connecting to {}: {e}", global.addr))?;
    let fail = |e: ClientError| e.to_string();

    match command.as_str() {
        "health" => {
            let h = client.health().map_err(fail)?;
            say(format_args!(
                "{} (api {}, queue depth {})",
                h.status, h.version, h.queue_depth
            ));
            Ok(0)
        }
        "scenarios" => {
            let list = client.scenarios().map_err(fail)?;
            for s in &list {
                say(format_args!(
                    "{:<16} {:>4} cells  [{}]  {}",
                    s.name, s.cells, s.source, s.description
                ));
            }
            Ok(0)
        }
        "list" => {
            let list = client.list().map_err(fail)?;
            for j in &list.jobs {
                say(format_args!(
                    "#{:<6} {:<10} {:>4}/{:<4} cells  {}{}",
                    j.id,
                    j.state,
                    j.progress.completed,
                    j.progress.total,
                    j.scenario,
                    j.filter
                        .as_deref()
                        .map(|f| format!("  filter={f}"))
                        .unwrap_or_default()
                ));
            }
            Ok(0)
        }
        "submit" => {
            let request = parse_sweep_request(cmd_args)?;
            let sub = client.submit(&request).map_err(fail)?;
            say(format_args!(
                "job {} {} ({}{})",
                sub.id,
                sub.url,
                sub.state,
                if sub.deduped { ", deduped" } else { "" }
            ));
            Ok(0)
        }
        "run" => {
            let request = parse_sweep_request(cmd_args)?;
            let sub = client.submit(&request).map_err(fail)?;
            esay(format_args!(
                "submitted job {}{}",
                sub.id,
                if sub.deduped {
                    " (deduped onto an identical in-flight job)"
                } else {
                    ""
                }
            ));
            let status = client.stream_cells(sub.id, print_cell).map_err(fail)?;
            Ok(summarise(&status))
        }
        "status" => {
            let id = parse_id(cmd_args)?;
            let status = client.status(id).map_err(fail)?;
            say(format_args!(
                "{}",
                serde_json::to_string_pretty(&status).expect("status serializes")
            ));
            Ok(0)
        }
        "stream" => {
            let id = parse_id(cmd_args)?;
            let status = client.stream_cells(id, print_cell).map_err(fail)?;
            Ok(summarise(&status))
        }
        "cancel" => {
            let id = parse_id(cmd_args)?;
            let status = client.cancel(id).map_err(fail)?;
            say(format_args!("job {} is now {}", id, status.state));
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn parse_id(args: &[String]) -> Result<u64, String> {
    match args {
        [id] => id
            .parse()
            .map_err(|_| format!("job id must be an integer, got `{id}`")),
        _ => Err("expected exactly one job id".to_owned()),
    }
}

fn parse_sweep_request(args: &[String]) -> Result<SweepRequest, String> {
    let mut request = SweepRequest::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--scenario" => request.scenario = Some(value("--scenario")?),
            "--filter" => request.filter = Some(value("--filter")?),
            "--file" => {
                let path = value("--file")?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
                let scenario: Scenario =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                request.inline = Some(scenario);
            }
            flag => return Err(format!("unknown sweep option `{flag}`")),
        }
    }
    request.validate()?;
    Ok(request)
}

fn print_cell(cell: &CellResult) {
    match (&cell.error, cell.mips) {
        (Some(e), _) => say(format_args!("{:<48} ERROR {e}", cell.label)),
        (None, Some(mips)) => {
            let stats = cell.stats.as_ref().expect("successful cell has stats");
            say(format_args!(
                "{:<48} {:>12} cycles  ipc {:>5.2}  {:>7.1} mips",
                cell.label, stats.cycles, stats.ipc, mips
            ));
        }
        (None, None) => {
            let stats = cell.stats.as_ref().expect("successful cell has stats");
            say(format_args!(
                "{:<48} {:>12} cycles  ipc {:>5.2}   cached",
                cell.label, stats.cycles, stats.ipc
            ));
        }
    }
}

fn summarise(status: &SweepStatus) -> i32 {
    match &status.result {
        Some(result) => {
            esay(format_args!(
                "job {}: {} — {} cells ({} cached, {} simulated, {} failed), {:.1}ms simulated",
                status.id,
                status.state,
                result.cells.len(),
                result.cached,
                result.executed,
                result.failed,
                result.simulated_wall_ms,
            ));
        }
        None => esay(format_args!("job {}: {}", status.id, status.state)),
    }
    i32::from(status.state != simdsim_api::JobState::Done)
}
