//! `simdsim-client` — the first-class client of the simdsim v1 sweep API.
//!
//! [`SimdsimClient`] speaks the typed contract defined in `simdsim-api`
//! over one blocking keep-alive HTTP/1.1 connection: submit sweeps, poll
//! status, stream per-cell results through the `?since=` long-poll cursor
//! while the job runs, cancel jobs, and list everything the server knows.
//! Every consumer of the service in this workspace — the `loadgen` bench,
//! the `sweepctl` CLI, the smoke script, the integration tests — goes
//! through this one implementation of the wire format.
//!
//! ```no_run
//! use simdsim_api::SweepRequest;
//! use simdsim_client::SimdsimClient;
//! use std::time::Duration;
//!
//! let mut client =
//!     SimdsimClient::connect("127.0.0.1:8844", Duration::from_secs(60)).expect("connect");
//! let sub = client
//!     .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
//!     .expect("submit");
//! let status = client
//!     .stream_cells(sub.id, |cell| println!("{} done", cell.label))
//!     .expect("stream");
//! assert!(status.state.is_terminal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod worker;

use serde::Deserialize;
use simdsim_api::{
    ApiError, BatchSubmitResponse, CellResult, CellsPage, DebugEvents, FleetStatus, Health,
    HeartbeatResponse, JobList, LeaseRequest, LeaseResponse, ProfileResponse, RegisterRequest,
    RegisterResponse, ReportRequest, ReportResponse, ScenarioInfo, SnapshotImported, StoreSnapshot,
    SubmitResponse, SweepRequest, SweepStatus, API_BASE, API_VERSION, TRACE_HEADER,
};
use simdsim_obs::TraceId;
use std::net::ToSocketAddrs;
use std::time::Duration;

pub use http::{HttpClient, HttpResponse};
pub use worker::{run_worker, spawn_worker, WorkerConfig, WorkerHandle, WorkerStats};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server answered, but not with the contract's shape.
    Protocol(String),
    /// The server answered with a typed [`ApiError`].
    Api {
        /// The HTTP status of the error response.
        status: u16,
        /// The typed error body.
        error: ApiError,
    },
}

impl ClientError {
    /// The typed API error, when this is an [`ClientError::Api`].
    #[must_use]
    pub fn api_error(&self) -> Option<&ApiError> {
        match self {
            ClientError::Api { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Api { status, error } => write!(f, "server ({status}): {error}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A typed, blocking, keep-alive client for one sweep service.
#[derive(Debug)]
pub struct SimdsimClient {
    http: HttpClient,
}

impl SimdsimClient {
    /// Connects to `addr` with `timeout` applied to reads and writes, and
    /// **negotiates the API version**: the server's `/v1/healthz` must
    /// list this client's version (`"v1"`) in `api_versions`, otherwise
    /// the connection is refused with a [`ClientError::Protocol`].
    ///
    /// The timeout bounds every individual socket operation, so it must
    /// exceed the `wait_ms` passed to [`SimdsimClient::cells`].
    ///
    /// # Errors
    ///
    /// Propagates resolution/connection errors, and fails the version
    /// handshake against a server that does not speak `v1`.
    pub fn connect(
        addr: impl ToSocketAddrs + std::fmt::Display,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let mut client = Self {
            http: HttpClient::connect(addr, timeout)?,
        };
        let health = client.health()?;
        if !health.speaks(API_VERSION) {
            return Err(ClientError::Protocol(format!(
                "server speaks {:?}, this client requires `{API_VERSION}`",
                health.api_versions
            )));
        }
        Ok(client)
    }

    /// Wraps an already-connected transport.
    #[must_use]
    pub fn from_http(http: HttpClient) -> Self {
        Self { http }
    }

    fn decode<T: Deserialize>(resp: &HttpResponse, expect: u16) -> Result<T, ClientError> {
        let text = resp.body_str();
        if resp.status >= 400 {
            let error = serde_json::from_str::<ApiError>(&text).map_err(|_| {
                ClientError::Protocol(format!(
                    "status {} with unparseable error body: {text}",
                    resp.status
                ))
            })?;
            return Err(ClientError::Api {
                status: resp.status,
                error,
            });
        }
        if resp.status != expect {
            return Err(ClientError::Protocol(format!(
                "expected status {expect}, got {}: {text}",
                resp.status
            )));
        }
        serde_json::from_str(&text)
            .map_err(|e| ClientError::Protocol(format!("malformed response body: {e} in {text}")))
    }

    /// `GET /v1/healthz`.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn health(&mut self) -> Result<Health, ClientError> {
        let resp = self.http.get(&format!("{API_BASE}/healthz"))?;
        Self::decode(&resp, 200)
    }

    /// `GET /v1/scenarios` — the catalog plus user scenarios.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn scenarios(&mut self) -> Result<Vec<ScenarioInfo>, ClientError> {
        let resp = self.http.get(&format!("{API_BASE}/scenarios"))?;
        Self::decode(&resp, 200)
    }

    /// `GET /v1/sweeps` — every job the server knows, newest first.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn list(&mut self) -> Result<JobList, ClientError> {
        let resp = self.http.get(&format!("{API_BASE}/sweeps"))?;
        Self::decode(&resp, 200)
    }

    /// `POST /v1/sweeps` — submits a sweep.  A fresh trace id is generated
    /// and sent in the `X-Simdsim-Trace-Id` header, so the submission and
    /// everything it fans out into (job execution, fleet leases, worker
    /// unit spans) share one id in `GET /v1/debug/events`; the id the job
    /// actually runs under comes back in [`SubmitResponse::trace`]
    /// (coalesced submissions observe the original job's trace).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors ([`simdsim_api::ErrorCode::QueueFull`]
    /// when the server is at capacity).
    pub fn submit(&mut self, request: &SweepRequest) -> Result<SubmitResponse, ClientError> {
        self.submit_traced(request, &TraceId::generate().to_hex())
    }

    /// [`SimdsimClient::submit`] under a caller-chosen trace id (32 hex
    /// chars) — lets a CLI print the id before submitting, or several
    /// submissions share one trace.
    ///
    /// # Errors
    ///
    /// As for [`SimdsimClient::submit`].
    pub fn submit_traced(
        &mut self,
        request: &SweepRequest,
        trace: &str,
    ) -> Result<SubmitResponse, ClientError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("request serialization: {e}")))?;
        let resp = self.http.send_json_with_headers(
            "POST",
            &format!("{API_BASE}/sweeps"),
            &body,
            &[(TRACE_HEADER, trace)],
        )?;
        Self::decode(&resp, 202)
    }

    /// `GET /v1/sweeps/{id}` — one job's status document.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn status(&mut self, id: u64) -> Result<SweepStatus, ClientError> {
        let resp = self.http.get(&format!("{API_BASE}/sweeps/{id}"))?;
        Self::decode(&resp, 200)
    }

    /// `GET /v1/sweeps/{id}/profile` — the job's aggregated CPI stack.
    /// A running job answers with the partial aggregate over the cells
    /// resolved so far; `profile` is `null` until one profiled cell has.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors (`unknown_job` for
    /// unknown ids).
    pub fn profile(&mut self, id: u64) -> Result<ProfileResponse, ClientError> {
        let resp = self.http.get(&format!("{API_BASE}/sweeps/{id}/profile"))?;
        Self::decode(&resp, 200)
    }

    /// `GET /v1/sweeps/{id}/cells?since=N` — one page of the per-cell
    /// result stream.  The server long-polls: when no cell beyond `since`
    /// has resolved yet and the job is still running, it holds the
    /// request up to `wait` before answering (possibly with an empty
    /// page).  A cursor beyond the end of the stream yields an empty
    /// page, not an error.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn cells(&mut self, id: u64, since: u64, wait: Duration) -> Result<CellsPage, ClientError> {
        let resp = self.http.get(&format!(
            "{API_BASE}/sweeps/{id}/cells?since={since}&wait_ms={}",
            wait.as_millis()
        ))?;
        Self::decode(&resp, 200)
    }

    /// `DELETE /v1/sweeps/{id}` — cancels a job.  Queued jobs drop
    /// immediately (the returned state is `cancelled`); running jobs stop
    /// cooperatively between cells (the returned state is still
    /// `running` until the worker observes the flag).
    ///
    /// # Errors
    ///
    /// Typed API errors: `unknown_job` (404) for unknown ids, `conflict`
    /// (409) for already-finished jobs; plus transport/protocol errors.
    pub fn cancel(&mut self, id: u64) -> Result<SweepStatus, ClientError> {
        let resp = self.http.delete(&format!("{API_BASE}/sweeps/{id}"))?;
        if resp.status == 202 {
            return Self::decode(&resp, 202);
        }
        Self::decode(&resp, 200)
    }

    /// Streams every cell of job `id` through `on_cell` via the long-poll
    /// cursor, returning the job's final status document once the stream
    /// completes.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn stream_cells(
        &mut self,
        id: u64,
        mut on_cell: impl FnMut(&CellResult),
    ) -> Result<SweepStatus, ClientError> {
        let mut since = 0u64;
        loop {
            let page = self.cells(id, since, Duration::from_millis(2000))?;
            for cell in &page.cells {
                on_cell(cell);
            }
            since = page.next;
            if page.done {
                break;
            }
        }
        self.status(id)
    }

    /// Polls `GET /v1/sweeps/{id}` every `interval` until the job reaches
    /// a terminal state, returning the final status document.  Unbounded:
    /// prefer [`SimdsimClient::wait_timeout`] anywhere a wedged server
    /// must surface as an error instead of a hang.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn wait(&mut self, id: u64, interval: Duration) -> Result<SweepStatus, ClientError> {
        self.wait_timeout(id, interval, Duration::MAX)
    }

    /// [`SimdsimClient::wait`] with a deadline: gives up once `timeout`
    /// has elapsed without the job reaching a terminal state.
    ///
    /// # Errors
    ///
    /// A [`ClientError::Protocol`] naming the job and its last observed
    /// state on deadline; otherwise transport/protocol/API errors.
    pub fn wait_timeout(
        &mut self,
        id: u64,
        interval: Duration,
        timeout: Duration,
    ) -> Result<SweepStatus, ClientError> {
        let deadline = std::time::Instant::now().checked_add(timeout);
        loop {
            let status = self.status(id)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                return Err(ClientError::Protocol(format!(
                    "job {id} did not finish within {timeout:?} (last state: {})",
                    status.state
                )));
            }
            std::thread::sleep(interval);
        }
    }

    /// `POST /v1/sweeps:batch` — submits many sweeps in one request.
    /// Failures are **typed per item** ([`simdsim_api::BatchSubmitItem`]):
    /// a bad request in position 2 does not reject positions 0 and 1.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors (an empty batch or an
    /// unparseable envelope fails the whole request).
    pub fn submit_batch(
        &mut self,
        requests: &[SweepRequest],
    ) -> Result<BatchSubmitResponse, ClientError> {
        let body = serde_json::to_string(&simdsim_api::BatchSubmitRequest {
            sweeps: requests.to_vec(),
        })
        .map_err(|e| ClientError::Protocol(format!("request serialization: {e}")))?;
        let resp = self.http.post(&format!("{API_BASE}/sweeps:batch"), &body)?;
        Self::decode(&resp, 200)
    }

    /// `POST /v1/workers/register` — joins the worker fleet, returning the
    /// assigned worker id and the coordinator's timing contract.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn register_worker(
        &mut self,
        request: &RegisterRequest,
    ) -> Result<RegisterResponse, ClientError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("request serialization: {e}")))?;
        let resp = self
            .http
            .post(&format!("{API_BASE}/workers/register"), &body)?;
        Self::decode(&resp, 200)
    }

    /// `POST /v1/workers/{id}/heartbeat` — keeps a worker registration
    /// live.  An evicted worker gets `unknown_worker` (404) and should
    /// re-register.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn heartbeat(&mut self, worker: u64) -> Result<HeartbeatResponse, ClientError> {
        let resp = self
            .http
            .post(&format!("{API_BASE}/workers/{worker}/heartbeat"), "{}")?;
        Self::decode(&resp, 200)
    }

    /// `POST /v1/workers/{id}/lease` — asks for cells to simulate.  The
    /// coordinator long-polls up to `wait_ms`; `lease: null` means no work
    /// arrived in time.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn lease(
        &mut self,
        worker: u64,
        request: &LeaseRequest,
    ) -> Result<LeaseResponse, ClientError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("request serialization: {e}")))?;
        let resp = self
            .http
            .post(&format!("{API_BASE}/workers/{worker}/lease"), &body)?;
        Self::decode(&resp, 200)
    }

    /// `POST /v1/workers/{id}/report` — returns finished cells to the
    /// coordinator.  Duplicates are counted `stale`, never an error.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn report(
        &mut self,
        worker: u64,
        request: &ReportRequest,
    ) -> Result<ReportResponse, ClientError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("request serialization: {e}")))?;
        let resp = self
            .http
            .post(&format!("{API_BASE}/workers/{worker}/report"), &body)?;
        Self::decode(&resp, 200)
    }

    /// `GET /v1/workers` — the fleet listing: every registered worker
    /// with liveness, lease, and completion counts.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn fleet_status(&mut self) -> Result<FleetStatus, ClientError> {
        let resp = self.http.get(&format!("{API_BASE}/workers"))?;
        Self::decode(&resp, 200)
    }

    /// `GET /v1/store/snapshot` — exports the server's content-addressed
    /// result store (empty when the server runs cache-less).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn store_export(&mut self) -> Result<StoreSnapshot, ClientError> {
        let resp = self.http.get(&format!("{API_BASE}/store/snapshot"))?;
        Self::decode(&resp, 200)
    }

    /// `PUT /v1/store/snapshot` — imports a snapshot into the server's
    /// store; existing keys are skipped.
    ///
    /// # Errors
    ///
    /// Typed API errors: `not_implemented` (501) against a cache-less
    /// server, `bad_request` (400) on a schema mismatch; plus
    /// transport/protocol errors.
    pub fn store_import(
        &mut self,
        snapshot: &StoreSnapshot,
    ) -> Result<SnapshotImported, ClientError> {
        let body = serde_json::to_string(snapshot)
            .map_err(|e| ClientError::Protocol(format!("request serialization: {e}")))?;
        let resp = self
            .http
            .put(&format!("{API_BASE}/store/snapshot"), &body)?;
        Self::decode(&resp, 200)
    }

    /// `GET /v1/debug/events` — the coordinator's flight recorder,
    /// filtered by any subset of trace id, job id, worker id, and kind
    /// prefix (a `None` matches everything).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or typed API errors.
    pub fn debug_events(
        &mut self,
        trace: Option<&str>,
        job: Option<u64>,
        worker: Option<u64>,
        kind: Option<&str>,
    ) -> Result<DebugEvents, ClientError> {
        let mut query = String::new();
        let mut push = |name: &str, value: String| {
            query.push(if query.is_empty() { '?' } else { '&' });
            query.push_str(name);
            query.push('=');
            query.push_str(&value);
        };
        if let Some(t) = trace {
            push("trace", t.to_owned());
        }
        if let Some(j) = job {
            push("job", j.to_string());
        }
        if let Some(w) = worker {
            push("worker", w.to_string());
        }
        if let Some(k) = kind {
            push("kind", k.to_owned());
        }
        let resp = self.http.get(&format!("{API_BASE}/debug/events{query}"))?;
        Self::decode(&resp, 200)
    }

    /// The raw transport, for requests outside the typed surface
    /// (`/metrics` scrapes, legacy-alias checks).
    pub fn http(&mut self) -> &mut HttpClient {
        &mut self.http
    }
}
