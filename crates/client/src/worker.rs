//! The fleet worker: a process that registers with a coordinator
//! (`simdsim-serve`), leases cells, simulates them with the very same
//! in-process engine, and reports per-cell results.
//!
//! The loop is deliberately simple — the coordinator owns all the hard
//! state (leases, timeouts, re-queueing):
//!
//! 1. `POST /v1/workers/register`, learning the heartbeat cadence and
//!    lease TTL.
//! 2. Optionally warm-start the local result store from the
//!    coordinator's snapshot (`GET /v1/store/snapshot`).
//! 3. Long-poll `POST /v1/workers/{id}/lease`; every fleet call doubles
//!    as a liveness signal, and while cells execute a background
//!    heartbeat keeps the registration alive.
//! 4. Simulate each leased cell ([`simdsim_sweep::execute_cell`]),
//!    consulting the local store first, and report the batch.
//!
//! Getting `unknown_worker` (404) anywhere means the coordinator evicted
//! us (a pause longer than the liveness contract, or a coordinator
//! restart): the worker silently re-registers and carries on.  A crashed
//! worker needs no cleanup at all — its leases expire and the cells are
//! re-offered to the rest of the fleet.

use crate::{ClientError, SimdsimClient};
use simdsim_api::{
    CellPhases, DebugEvent, ErrorCode, Lease, LeaseRequest, LeasedCell, RegisterRequest,
    ReportRequest, UnitResult,
};
use simdsim_obs::now_ms;
use simdsim_sweep::{cell_key, execute_cell, ResultStore, StoredCell};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a worker process needs to join a fleet.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The coordinator's `host:port`.
    pub addr: String,
    /// Name shown in `sweepctl fleet status`.
    pub name: String,
    /// Concurrent simulation slots; also the cell count per lease.
    pub slots: u64,
    /// Local content-addressed store (results are checked before
    /// simulating and saved after).  `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Import the coordinator's store snapshot into the local store on
    /// startup, so a fresh worker skips everything the fleet already
    /// simulated.
    pub warm_start: bool,
    /// Socket timeout for every request.
    pub timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8844".to_owned(),
            name: "worker".to_owned(),
            slots: 1,
            cache_dir: None,
            warm_start: false,
            timeout: Duration::from_secs(60),
        }
    }
}

/// What a worker did over its lifetime, returned when it stops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Leases granted to this worker.
    pub leases: u64,
    /// Cells simulated.
    pub simulated: u64,
    /// Cells answered from the local store.
    pub cached: u64,
}

/// Runs the worker loop until `stop` is set, returning the tallies.
///
/// # Errors
///
/// Transport, protocol, or typed API errors other than the
/// `unknown_worker` eviction (which re-registers instead of failing).
pub fn run_worker(cfg: &WorkerConfig, stop: &AtomicBool) -> Result<WorkerStats, ClientError> {
    let mut client = SimdsimClient::connect(&cfg.addr, cfg.timeout)?;
    let store = cfg.cache_dir.clone().map(ResultStore::new);
    // Advertise the local cache contents so the coordinator can lease
    // with affinity.  Recomputed at every (re-)registration: the store
    // grows as the worker runs, and an evicted worker that comes back
    // should advertise everything it has accumulated since.
    let register = |store: Option<&ResultStore>| RegisterRequest {
        name: cfg.name.clone(),
        slots: cfg.slots.max(1),
        cache_keys: store
            .map(|s| s.keys().iter().map(|k| k.as_str().to_owned()).collect())
            .unwrap_or_default(),
    };
    let mut reg = client.register_worker(&register(store.as_ref()))?;
    if cfg.warm_start {
        if let Some(store) = &store {
            let snapshot = client.store_export()?;
            store.import(snapshot.entries.iter().map(|e| {
                (
                    e.key.as_str(),
                    StoredCell {
                        label: e.label.clone(),
                        stats: e.stats.clone(),
                    },
                )
            }));
        }
    }
    let heartbeat = Duration::from_millis(reg.heartbeat_interval_ms.max(1));
    // The lease long-poll is the idle-time heartbeat: short enough that
    // the coordinator sees us well inside the liveness window, and also
    // how often the stop flag is observed.
    let wait = (heartbeat / 2).max(Duration::from_millis(10));

    let mut stats = WorkerStats::default();
    while !stop.load(Ordering::Relaxed) {
        let request = LeaseRequest {
            max_cells: cfg.slots.max(1),
            wait_ms: wait.as_millis() as u64,
        };
        let lease = match client.lease(reg.worker_id, &request) {
            Ok(resp) => match resp.lease {
                Some(lease) => lease,
                None => continue, // no work arrived within the poll
            },
            Err(e) if is_eviction(&e) => {
                reg = client.register_worker(&register(store.as_ref()))?;
                continue;
            }
            Err(e) => return Err(e),
        };
        stats.leases += 1;
        let results = execute_lease(
            &mut client,
            reg.worker_id,
            &lease,
            store.as_ref(),
            heartbeat,
        );
        for r in &results {
            if r.cached {
                stats.cached += 1;
            } else {
                stats.simulated += 1;
            }
        }
        let spans = unit_spans(&lease, &results, reg.worker_id);
        let report = ReportRequest {
            lease_id: lease.lease_id,
            results,
            spans,
        };
        match client.report(reg.worker_id, &report) {
            // Evicted mid-lease: the cells were re-queued (or our late
            // report raced a re-execution — either way the coordinator
            // resolved them).  Rejoin and keep going.
            Err(e) if is_eviction(&e) => {
                reg = client.register_worker(&register(store.as_ref()))?;
            }
            Err(e) => return Err(e),
            Ok(_) => {}
        }
    }
    Ok(stats)
}

fn is_eviction(e: &ClientError) -> bool {
    e.api_error()
        .is_some_and(|err| err.code == ErrorCode::UnknownWorker)
}

/// One `worker.unit` span per resolved cell, tagged with the lease's
/// trace/job ids — shipped inside the report so the coordinator's flight
/// recorder shows the worker's side of the fan-out.
fn unit_spans(lease: &Lease, results: &[UnitResult], worker: u64) -> Vec<DebugEvent> {
    results
        .iter()
        .map(|r| {
            let leased = lease.cells.iter().find(|c| c.unit == r.unit);
            DebugEvent {
                seq: 0,
                ts_ms: now_ms(),
                kind: "worker.unit".to_owned(),
                trace: leased.and_then(|c| c.trace.clone()),
                job: leased.and_then(|c| c.job),
                worker: Some(worker),
                unit: Some(r.unit),
                dur_ms: Some(r.wall_ms),
                detail: match leased {
                    Some(c) => {
                        let mut d = format!(
                            "{} {}",
                            c.cell.label(),
                            if r.cached { "cached" } else { "simulated" }
                        );
                        // Freshly simulated cells carry superblock-engine
                        // counters; cached cells replay stored stats.
                        if let Some(s) = r.stats.as_ref().filter(|_| !r.cached) {
                            d.push_str(&format!(
                                " blocks={} hits={} side_exits={}",
                                s.blocks_cached, s.block_hits, s.side_exits
                            ));
                            if let Some(top) = s.profile.as_ref().and_then(top_stall) {
                                d.push_str(&format!(" top_stall={top}"));
                            }
                        }
                        d
                    }
                    None => String::new(),
                },
            }
        })
        .collect()
}

/// The dominant stall cause of one cell's CPI stack as `cause:slots`
/// (slots summed across regions); `None` for a stall-free cell.
fn top_stall(stack: &simdsim_sweep::CpiStack) -> Option<String> {
    use simdsim_sweep::{StallCause, NUM_REGIONS};
    StallCause::ALL
        .iter()
        .map(|c| {
            let slots: u64 = (0..NUM_REGIONS).map(|r| stack.stall(*c, r)).sum();
            (c.label(), slots)
        })
        .max_by_key(|&(_, slots)| slots)
        .filter(|&(_, slots)| slots > 0)
        .map(|(label, slots)| format!("{label}:{slots}"))
}

/// Simulates every cell of one lease, up to `slots` at a time, while the
/// calling thread heartbeats so a long lease cannot get the worker
/// evicted mid-execution.
fn execute_lease(
    client: &mut SimdsimClient,
    worker: u64,
    lease: &Lease,
    store: Option<&ResultStore>,
    heartbeat: Duration,
) -> Vec<UnitResult> {
    let queue: Mutex<VecDeque<&LeasedCell>> = Mutex::new(lease.cells.iter().collect());
    let results: Mutex<Vec<UnitResult>> = Mutex::new(Vec::with_capacity(lease.cells.len()));
    let threads = lease.cells.len().max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                let Some(leased) = next else { break };
                let result = execute_one(leased, store);
                results.lock().expect("results lock").push(result);
            });
        }
        let mut last_beat = Instant::now();
        while results.lock().expect("results lock").len() < lease.cells.len() {
            std::thread::sleep(Duration::from_millis(5));
            if last_beat.elapsed() >= heartbeat {
                // Liveness only; an eviction here surfaces on the next
                // lease/report call, which re-registers.
                let _ = client.heartbeat(worker);
                last_beat = Instant::now();
            }
        }
    });
    let mut results = results.into_inner().expect("results lock");
    // Deterministic report order regardless of which slot finished first.
    results.sort_by_key(|r| r.unit);
    results
}

/// Simulates (or loads) one leased cell, timing each phase: the store
/// probe, the engine's decode/simulate split, and the store write-back.
fn execute_one(leased: &LeasedCell, store: Option<&ResultStore>) -> UnitResult {
    let probe = Instant::now();
    let key = leased
        .cell
        .config()
        .ok()
        .map(|cfg| cell_key(&leased.cell, &cfg));
    if let (Some(store), Some(key)) = (store, &key) {
        if let Some(hit) = store.load(key) {
            return UnitResult {
                unit: leased.unit,
                cached: true,
                wall_ms: 0.0,
                stats: Some(hit.stats),
                error: None,
                phases: Some(CellPhases {
                    probe_ms: probe.elapsed().as_secs_f64() * 1e3,
                    ..CellPhases::default()
                }),
            };
        }
    }
    let probe_ms = probe.elapsed().as_secs_f64() * 1e3;
    let run = execute_cell(&leased.cell);
    let mut phases = run.phases;
    phases.probe_ms = probe_ms;
    match run.stats {
        Ok(stats) => {
            if let (Some(store), Some(key)) = (store, &key) {
                let write = Instant::now();
                store.save(
                    key,
                    &StoredCell {
                        label: leased.cell.label(),
                        stats: stats.clone(),
                    },
                );
                phases.store_ms = write.elapsed().as_secs_f64() * 1e3;
            }
            UnitResult {
                unit: leased.unit,
                cached: false,
                wall_ms: run.wall.as_secs_f64() * 1000.0,
                stats: Some(stats),
                error: None,
                phases: Some(phases),
            }
        }
        Err(e) => UnitResult {
            unit: leased.unit,
            cached: false,
            wall_ms: run.wall.as_secs_f64() * 1000.0,
            stats: None,
            error: Some(e.message),
            phases: Some(phases),
        },
    }
}

/// An in-process worker (tests, `loadgen`): [`run_worker`] on its own
/// thread with a stop flag.
#[derive(Debug)]
pub struct WorkerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<Result<WorkerStats, ClientError>>>,
}

impl WorkerHandle {
    /// Signals the loop to stop and joins it, returning its tallies.
    ///
    /// # Errors
    ///
    /// Whatever error stopped the loop first, if any.
    pub fn stop(mut self) -> Result<WorkerStats, ClientError> {
        self.stop.store(true, Ordering::Relaxed);
        self.thread
            .take()
            .expect("worker thread present until stop")
            .join()
            .unwrap_or_else(|_| Err(ClientError::Protocol("worker thread panicked".to_owned())))
    }

    /// The shared stop flag (lets embedders stop many workers at once).
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }
}

/// Spawns [`run_worker`] on a background thread.
#[must_use]
pub fn spawn_worker(cfg: WorkerConfig) -> WorkerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name(format!("fleet-worker-{}", cfg.name))
        .spawn(move || run_worker(&cfg, &flag))
        .expect("spawn fleet worker");
    WorkerHandle {
        stop,
        thread: Some(thread),
    }
}
