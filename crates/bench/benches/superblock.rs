//! Criterion benchmarks of the superblock execution engine: the fused
//! emulate+time path (whole blocks scoreboarded from precomputed
//! dependence edges) against the per-instruction fallback, and the SWAR
//! sub-word kernels against their per-lane scalar references.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simdsim::emu::{DynInstr, Machine, TraceSink};
use simdsim::kernels::{by_name, Variant};
use simdsim::pipe::{PipeConfig, Pipeline};
use simdsim_emu::subword::{self, scalar_ref};
use simdsim_isa::{DecodedBlock, DecodedInstr, Esz, Ext, VOp, VShiftOp};

/// A sink that forwards only `push`, so the trait's default `push_block`
/// replays every block one instruction at a time — the pre-superblock
/// timing path, kept as the side-exit fallback.
struct PerInstr(Pipeline);

impl TraceSink for PerInstr {
    fn push(&mut self, di: &DynInstr, dec: &DecodedInstr) {
        self.0.push(di, dec);
    }
}

/// A sink that forwards `push_block` too, taking the fused path.
struct Fused(Pipeline);

impl TraceSink for Fused {
    fn push(&mut self, di: &DynInstr, dec: &DecodedInstr) {
        self.0.push(di, dec);
    }

    fn push_block(&mut self, dis: &[DynInstr], decs: &[DecodedInstr], block: &DecodedBlock) {
        self.0.push_block(dis, decs, block);
    }
}

fn bench_block_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("superblock-timing");
    g.sample_size(10);
    let kernel = by_name("motion1").expect("motion1 exists");
    for ext in [Ext::Mmx64, Ext::Vmmx128] {
        let built = kernel.build(Variant::for_ext(ext));
        let dec = built.program.decode();
        let cfg = PipeConfig::paper(2, ext);
        let mut probe = built.machine.clone();
        let stats = probe
            .run_decoded(&dec, &mut simdsim::emu::NullSink, u64::MAX)
            .expect("runs");
        g.throughput(Throughput::Elements(stats.dyn_instrs));

        g.bench_with_input(
            BenchmarkId::new("fused-blocks", ext.name()),
            &built,
            |b, built| {
                let mut m: Machine = built.machine.clone();
                b.iter(|| {
                    m.reset_from(&built.machine);
                    let mut sink = Fused(Pipeline::new(cfg));
                    m.run_decoded(&dec, &mut sink, u64::MAX).expect("runs");
                    sink.0.stats()
                });
            },
        );

        g.bench_with_input(
            BenchmarkId::new("per-instruction", ext.name()),
            &built,
            |b, built| {
                let mut m: Machine = built.machine.clone();
                b.iter(|| {
                    m.reset_from(&built.machine);
                    let mut sink = PerInstr(Pipeline::new(cfg));
                    m.run_decoded(&dec, &mut sink, u64::MAX).expect("runs");
                    sink.0.stats()
                });
            },
        );
    }
    g.finish();
}

/// Deterministic packed operands (xorshift — no external RNG crate).
fn operands(n: usize) -> Vec<(u128, u128)> {
    let mut x = 0x243f_6a88_85a3_08d3_u64;
    let mut word = || {
        let mut w = 0u128;
        for _ in 0..2 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            w = (w << 64) | u128::from(x);
        }
        w
    };
    (0..n).map(|_| (word(), word())).collect()
}

fn bench_swar(c: &mut Criterion) {
    let mut g = c.benchmark_group("subword-swar");
    let inputs = operands(1024);
    g.throughput(Throughput::Elements(inputs.len() as u64));
    for (name, op) in [
        ("adds.h", VOp::AddS(Esz::H)),
        ("avg.b", VOp::Avg(Esz::B)),
        ("maxs.h", VOp::MaxS(Esz::H)),
    ] {
        g.bench_with_input(BenchmarkId::new("swar", name), &inputs, |b, inputs| {
            b.iter(|| {
                inputs
                    .iter()
                    .fold(0u128, |acc, &(x, y)| acc ^ subword::apply_vop(op, x, y, 16))
            });
        });
        g.bench_with_input(BenchmarkId::new("scalar", name), &inputs, |b, inputs| {
            b.iter(|| {
                inputs.iter().fold(0u128, |acc, &(x, y)| {
                    acc ^ scalar_ref::apply_vop(op, x, y, 16)
                })
            });
        });
    }
    g.bench_with_input(BenchmarkId::new("swar", "sll.h"), &inputs, |b, inputs| {
        b.iter(|| {
            inputs.iter().fold(0u128, |acc, &(x, _)| {
                acc ^ subword::apply_shift(VShiftOp::Sll(Esz::H), x, 3, 16)
            })
        });
    });
    g.bench_with_input(BenchmarkId::new("scalar", "sll.h"), &inputs, |b, inputs| {
        b.iter(|| {
            inputs.iter().fold(0u128, |acc, &(x, _)| {
                acc ^ scalar_ref::apply_shift(VShiftOp::Sll(Esz::H), x, 3, 16)
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_block_engine, bench_swar);
criterion_main!(benches);
