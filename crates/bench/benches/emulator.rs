//! Criterion benchmarks of the functional emulation path (`Machine::run`
//! and the predecoded `Machine::run_decoded` hot loop), isolated from the
//! timing model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simdsim::emu::{Machine, NullSink};
use simdsim::kernels::{by_name, Variant};
use simdsim_isa::Ext;

fn bench_machine_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulation");
    g.sample_size(10);
    let kernel = by_name("motion1").expect("motion1 exists");
    for ext in Ext::ALL {
        let built = kernel.build(Variant::for_ext(ext));
        let mut probe = built.machine.clone();
        let stats = probe
            .run(&built.program, &mut NullSink, u64::MAX)
            .expect("runs");
        g.throughput(Throughput::Elements(stats.dyn_instrs));

        // `run`: predecode + execute, fresh table per call.
        g.bench_with_input(
            BenchmarkId::new("machine-run", ext.name()),
            &built,
            |b, built| {
                let mut m: Machine = built.machine.clone();
                b.iter(|| {
                    m.reset_from(&built.machine);
                    m.run(&built.program, &mut NullSink, u64::MAX)
                        .expect("runs")
                });
            },
        );

        // `run_decoded`: the steady-state hot loop over a resident table.
        let dec = built.program.decode();
        g.bench_with_input(
            BenchmarkId::new("machine-run-decoded", ext.name()),
            &built,
            |b, built| {
                let mut m: Machine = built.machine.clone();
                b.iter(|| {
                    m.reset_from(&built.machine);
                    m.run_decoded(&dec, &mut NullSink, u64::MAX).expect("runs")
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_machine_run);
criterion_main!(benches);
