//! Criterion benchmarks of the cycle-accurate simulation path: emulator +
//! out-of-order timing model, for one kernel and one application per
//! extension class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simdsim::kernels::{by_name, Variant};
use simdsim::pipe::{simulate, PipeConfig};
use simdsim_isa::Ext;

fn bench_timing_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing-simulation");
    g.sample_size(10);
    let kernel = by_name("motion1").expect("motion1 exists");
    for ext in Ext::ALL {
        let built = kernel.build(Variant::for_ext(ext));
        let cfg = PipeConfig::paper(2, ext);
        // Report simulated instructions per second.
        let (_, stats) =
            simulate(&built.program, &built.machine, &cfg, u64::MAX).expect("simulates");
        g.throughput(Throughput::Elements(stats.instrs));
        g.bench_with_input(
            BenchmarkId::new("motion1-2way", ext.name()),
            &built,
            |b, built| {
                b.iter(|| {
                    simulate(&built.program, &built.machine, &cfg, u64::MAX).expect("simulates")
                });
            },
        );
    }
    g.finish();
}

fn bench_app_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("app-simulation");
    g.sample_size(10);
    let app = simdsim_apps::by_name("gsmdec").expect("gsmdec exists");
    for ext in [Ext::Mmx64, Ext::Vmmx128] {
        let built = app.build(Variant::for_ext(ext));
        let cfg = PipeConfig::paper(2, ext);
        g.bench_with_input(
            BenchmarkId::new("gsmdec-2way", ext.name()),
            &built,
            |b, built| {
                b.iter(|| {
                    simulate(&built.program, &built.machine, &cfg, u64::MAX).expect("simulates")
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_timing_model, bench_app_simulation);
criterion_main!(benches);
