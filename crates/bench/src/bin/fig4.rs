//! Regenerates the paper's Figure 4: kernel speed-ups on the 2-way core,
//! relative to 2-way MMX64.
fn main() {
    let rows = simdsim_bench::fig4_rows_cached();
    println!("Figure 4 — kernel speed-ups (2-way, baseline 2-way MMX64)\n");
    println!("{}", simdsim::report::render_fig4(&rows));
    let path = simdsim_bench::results_dir().join("fig4.json");
    std::fs::write(&path, simdsim::report::to_json(&rows)).unwrap();
    eprintln!("wrote {}", path.display());
}
