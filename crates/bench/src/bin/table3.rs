//! Regenerates the paper's Table III (modelled processors).
fn main() {
    println!("Table III — processor configurations\n");
    println!(
        "{}",
        simdsim::report::render_table3(&simdsim::tables::table3())
    );
}
