//! Regenerates the paper's Figure 6: jpegdec cycle-count distribution
//! (vector vs scalar cycles), normalized to the 2-way MMX64 total.
fn main() {
    let rows = simdsim_bench::fig5_rows_cached();
    let jd = simdsim::experiments::fig6(&rows);
    println!("Figure 6 — jpegdec cycle breakdown (normalized to 2-way MMX64 = 100)\n");
    println!("{}", simdsim::report::render_fig6(&jd));
}
