//! Runs the ablation sweeps: lanes, L2 port width, matrix register file
//! size and redirect penalty (see `simdsim::ablations`), sharing the
//! workspace result cache with the `sweep` binary.
fn main() {
    for (title, scenario) in [
        (
            "Vector lanes (2-way VMMX128)",
            simdsim::sweep::catalog::ablate_lanes(),
        ),
        (
            "L2 vector-port width (2-way VMMX128)",
            simdsim::sweep::catalog::ablate_l2_port(),
        ),
        (
            "Physical matrix registers (2-way VMMX128)",
            simdsim::sweep::catalog::ablate_matrix_regs(),
        ),
        (
            "Branch redirect penalty (2-way MMX64)",
            simdsim::sweep::catalog::ablate_redirect(),
        ),
    ] {
        let rows = simdsim::ablations::rows_with(&scenario, &simdsim_bench::engine_options())
            .unwrap_or_else(|e| panic!("ablation {}: {e}", scenario.name));
        println!("=== {title} ===\n{}", simdsim::ablations::render(&rows));
        let name = title.split(' ').next().unwrap().to_lowercase();
        let path = simdsim_bench::results_dir().join(format!("ablation-{name}.json"));
        std::fs::write(&path, simdsim::report::to_json(&rows)).unwrap();
    }
}
