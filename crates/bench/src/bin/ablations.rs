//! Runs the ablation sweeps: lanes, L2 port width, matrix register file
//! size and redirect penalty (see `simdsim::ablations`).
fn main() {
    for (title, rows) in [
        ("Vector lanes (2-way VMMX128)", simdsim::ablations::lanes()),
        (
            "L2 vector-port width (2-way VMMX128)",
            simdsim::ablations::l2_port_width(),
        ),
        (
            "Physical matrix registers (2-way VMMX128)",
            simdsim::ablations::matrix_registers(),
        ),
        (
            "Branch redirect penalty (2-way MMX64)",
            simdsim::ablations::redirect_penalty(),
        ),
    ] {
        println!("=== {title} ===\n{}", simdsim::ablations::render(&rows));
        let name = title.split(' ').next().unwrap().to_lowercase();
        let path = simdsim_bench::results_dir().join(format!("ablation-{name}.json"));
        std::fs::write(&path, simdsim::report::to_json(&rows)).unwrap();
    }
}
