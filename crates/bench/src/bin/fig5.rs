//! Regenerates the paper's Figure 5: full-application speed-ups for the
//! twelve processor configurations, relative to 2-way MMX64.
fn main() {
    let rows = simdsim_bench::fig5_rows_cached();
    println!("Figure 5 — application speed-ups (baseline: 2-way MMX64 per app)\n");
    println!("{}", simdsim::report::render_fig5(&rows));
}
