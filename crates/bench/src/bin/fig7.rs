//! Regenerates the paper's Figure 7: dynamic instruction count by class,
//! per application, normalized to MMX64.
fn main() {
    let rows = simdsim_bench::fig5_rows_cached();
    let f7 = simdsim::experiments::fig7(&rows);
    println!("Figure 7 — dynamic instruction mix (normalized to MMX64 = 100)\n");
    println!("{}", simdsim::report::render_fig7(&f7));
}
