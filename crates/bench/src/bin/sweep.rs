//! `sweep` — run any named or user-defined scenario through the
//! `simdsim-sweep` engine.
//!
//! ```console
//! $ sweep --list                       # what's in the catalog
//! $ sweep fig4                         # one scenario
//! $ sweep --filter fig4 --jobs 2       # cells matching a label substring
//! $ sweep --scenario-file my.json      # a user-defined machine/sweep
//! ```
//!
//! Results are served from the content-addressed cache under
//! `target/simdsim-cache` when possible (`cached` rows); `--no-cache`
//! forces every cell to simulate.  A failing cell prints `FAILED` with
//! its error and flips the exit code, without aborting the other cells.

use simdsim::sweep::{catalog, run, EngineOptions, Scenario};

const USAGE: &str = "\
usage: sweep [OPTIONS] [SCENARIO...]

Run declarative simulation sweeps (catalog scenarios by name; all of them
when none is given).

options:
  --list                list catalog scenarios and exit
  --filter SUB          keep only cells whose label contains SUB
  --jobs N              worker-pool size (default: available parallelism)
  --no-cache            ignore and do not write the result cache
  --cache-dir DIR       cache directory (default: target/simdsim-cache)
  --scenario-file PATH  add a scenario from a JSON file (repeatable)
  --help                print this help";

struct Cli {
    names: Vec<String>,
    files: Vec<String>,
    filter: Option<String>,
    jobs: Option<usize>,
    no_cache: bool,
    cache_dir: Option<String>,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        names: Vec::new(),
        files: Vec::new(),
        filter: None,
        jobs: None,
        no_cache: false,
        cache_dir: None,
        list: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--list" => cli.list = true,
            "--filter" => cli.filter = Some(value("--filter")?),
            "--jobs" => {
                let v = value("--jobs")?;
                cli.jobs = Some(
                    v.parse()
                        .map_err(|_| format!("--jobs expects a number, got `{v}`"))?,
                );
            }
            "--no-cache" => cli.no_cache = true,
            "--cache-dir" => cli.cache_dir = Some(value("--cache-dir")?),
            "--scenario-file" => cli.files.push(value("--scenario-file")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            name => cli.names.push(name.to_owned()),
        }
    }
    Ok(cli)
}

fn scenarios(cli: &Cli) -> Result<Vec<Scenario>, String> {
    let mut out = Vec::new();
    for name in &cli.names {
        out.push(catalog::named(name).ok_or_else(|| {
            format!("unknown scenario `{name}` (run `sweep --list` for the catalog)")
        })?);
    }
    for path in &cli.files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let scenario: Scenario =
            serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        out.push(scenario);
    }
    if out.is_empty() {
        out = catalog::all();
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = main_impl(&args).unwrap_or_else(|msg| {
        eprintln!("sweep: {msg}");
        2
    });
    std::process::exit(code);
}

fn main_impl(args: &[String]) -> Result<i32, String> {
    let cli = parse_args(args)?;
    if cli.list {
        println!("{:<20} {:>6}  description", "scenario", "cells");
        for s in catalog::all() {
            println!("{:<20} {:>6}  {}", s.name, s.expand().len(), s.description);
        }
        return Ok(0);
    }

    let mut opts = EngineOptions::default();
    if let Some(jobs) = cli.jobs {
        opts = opts.jobs(jobs);
    }
    if let Some(filter) = &cli.filter {
        opts = opts.filter(filter.clone());
    }
    if !cli.no_cache {
        let dir = cli
            .cache_dir
            .clone()
            .unwrap_or_else(|| simdsim_bench::cache_dir().display().to_string());
        opts = opts.cache(dir);
    }

    let mut failures = 0usize;
    let mut printed_any = false;
    for scenario in scenarios(&cli)? {
        let report = run(&scenario, &opts);
        if report.outcomes.is_empty() {
            continue;
        }
        printed_any = true;
        let throughput = report
            .simulated_mips()
            .map_or(String::new(), |m| format!(", {m:.1} MIPS"));
        println!(
            "== {}: {} ({} cells, {} cached, {} simulated, {} failed{})",
            report.scenario,
            scenario.description,
            report.outcomes.len(),
            report.cached(),
            report.executed(),
            report.failed(),
            throughput
        );
        for o in &report.outcomes {
            match &o.stats {
                Ok(s) => println!(
                    "{:<44} cycles={:<10} instrs={:<10} ipc={:<5.2} {:<11} {}",
                    o.cell.label(),
                    s.cycles,
                    s.instrs,
                    s.ipc,
                    o.mips().map_or(String::new(), |m| format!("mips={m:.1}")),
                    if o.cached { "cached" } else { "ran" }
                ),
                Err(e) => {
                    failures += 1;
                    println!("{:<44} FAILED: {}", o.cell.label(), e.message);
                }
            }
        }
        println!();
    }
    if !printed_any {
        return Err(match &cli.filter {
            Some(filter) => format!("no cells matched filter `{filter}`"),
            None => "the selected scenarios expanded to no cells \
                     (check their workloads/exts/ways axes)"
                .to_owned(),
        });
    }
    Ok(i32::from(failures > 0))
}
