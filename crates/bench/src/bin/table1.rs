//! Regenerates the paper's Table I (register-file scaling).
fn main() {
    let rows = simdsim::tables::table1();
    println!("Table I — register file scaling (area model vs paper)\n");
    println!("{}", simdsim::report::render_table1(&rows));
    let path = simdsim_bench::results_dir().join("table1.json");
    std::fs::write(&path, simdsim::report::to_json(&rows)).unwrap();
    eprintln!("wrote {}", path.display());
}
