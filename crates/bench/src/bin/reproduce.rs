//! Runs every regenerator in sequence: the full paper reproduction.
fn main() {
    println!(
        "=== Table I ===\n{}",
        simdsim::report::render_table1(&simdsim::tables::table1())
    );
    println!(
        "=== Table II ===\n{}",
        simdsim::report::render_table2(&simdsim::tables::table2())
    );
    println!(
        "=== Table III ===\n{}",
        simdsim::report::render_table3(&simdsim::tables::table3())
    );
    println!("=== Table IV ===\n{}", simdsim::report::render_table4());
    let f4 = simdsim_bench::fig4_rows_cached();
    println!("=== Figure 4 ===\n{}", simdsim::report::render_fig4(&f4));
    std::fs::write(
        simdsim_bench::results_dir().join("fig4.json"),
        simdsim::report::to_json(&f4),
    )
    .unwrap();
    let rows = simdsim_bench::fig5_rows_cached();
    println!("=== Figure 5 ===\n{}", simdsim::report::render_fig5(&rows));
    println!(
        "=== Figure 6 ===\n{}",
        simdsim::report::render_fig6(&simdsim::experiments::fig6(&rows))
    );
    println!(
        "=== Figure 7 ===\n{}",
        simdsim::report::render_fig7(&simdsim::experiments::fig7(&rows))
    );
}
