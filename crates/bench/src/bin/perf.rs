//! `perf` — the simulation-throughput regenerator.
//!
//! Replays the paper's sweeps with the cache disabled, measures wall time
//! and simulated MIPS per cell, prints a throughput table and writes the
//! machine-readable trajectory to `BENCH_simdsim.json` so successive PRs
//! can compare hot-path performance.
//!
//! ```console
//! $ perf                 # fig4 + fig5 (the full paper replay)
//! $ perf --quick         # fig4 only (CI smoke; sub-second in release)
//! $ perf --out other.json --jobs 2
//! ```

use serde::{Serialize, Value};
use simdsim::sweep::{catalog, run, EngineOptions, SweepReport};

const USAGE: &str = "\
usage: perf [--quick] [--profile] [--jobs N] [--out PATH]

Measure end-to-end simulation throughput (wall time and simulated MIPS
per sweep cell) and write the BENCH_simdsim.json trajectory artifact.

options:
  --quick      run only the fig4 kernel sweep (CI smoke)
  --profile    keep cycle-accounting (CPI stacks) on while measuring;
               off by default so the artifact tracks the bare core and
               stays comparable with pre-profiler baselines
  --jobs N     worker-pool size (default: available parallelism)
  --out PATH   artifact path (default: BENCH_simdsim.json)
  --help       print this help";

/// One row of the throughput artifact.
///
/// `mips` divides by the cell's full wall time (workload build, decode
/// and store probe included); `core_mips` divides by `simulate_ms` only,
/// so it isolates the simulator core the superblock engine accelerates.
#[derive(Debug, Serialize)]
struct BenchCell {
    label: String,
    instrs: u64,
    cycles: u64,
    wall_ms: f64,
    mips: f64,
    simulate_ms: f64,
    core_mips: f64,
}

/// Aggregate of one scenario's simulated cells.  `core_mips` is the
/// instruction-weighted aggregate `sum(instrs) / sum(simulate_ms)` — the
/// throughput of the core as if the whole replay were one simulation, so
/// cells contribute in proportion to the work they carry.
#[derive(Debug, Serialize)]
struct BenchTotal {
    instrs: u64,
    wall_ms: f64,
    mips: f64,
    simulate_ms: f64,
    core_mips: f64,
}

/// The `BENCH_simdsim.json` schema.  `jobs` records the worker-pool size
/// the cells ran under: per-cell wall times include contention between
/// concurrent workers, so trajectories are only comparable at equal
/// `jobs`.
///
/// Schema version 2 added the setup-excluded `simulate_ms`/`core_mips`
/// pair per cell and in the total; readers must tolerate version-1
/// artifacts that lack them.
#[derive(Debug, Serialize)]
struct BenchArtifact {
    bench: String,
    schema_version: u32,
    mode: String,
    /// Whether cycle accounting (CPI stacks) was left on during the
    /// measurement; readers of older artifacts may assume `false`.
    profile: bool,
    jobs: usize,
    cells: Vec<BenchCell>,
    total: BenchTotal,
}

fn collect(report: &SweepReport, cells: &mut Vec<BenchCell>) -> Result<(), String> {
    for o in &report.outcomes {
        let stats = o
            .stats
            .as_ref()
            .map_err(|e| format!("cell {} failed: {}", e.cell, e.message))?;
        let simulate_ms = o.phases.simulate_ms;
        cells.push(BenchCell {
            label: o.cell.label(),
            instrs: stats.instrs,
            cycles: stats.cycles,
            wall_ms: o.wall.as_secs_f64() * 1.0e3,
            mips: o.mips().unwrap_or(0.0),
            simulate_ms,
            core_mips: if simulate_ms > 0.0 {
                stats.instrs as f64 / (simulate_ms / 1.0e3) / 1.0e6
            } else {
                0.0
            },
        });
    }
    Ok(())
}

/// Writes the artifact, preserving any foreign top-level sections an
/// existing file carries (the `loadgen`/`loadgen_fleet` summaries merged
/// in by the loadgen driver) so a throughput refresh never erases them.
fn write_artifact(path: &str, artifact: &BenchArtifact) -> Result<(), String> {
    let Value::Object(mut pairs) = serde::Serialize::to_value(artifact) else {
        return Err("artifact did not serialize as an object".to_owned());
    };
    if let Some(Value::Object(old)) = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
    {
        for (k, v) in old {
            if !pairs.iter().any(|(fresh, _)| *fresh == k) {
                pairs.push((k, v));
            }
        }
    }
    std::fs::write(path, simdsim::report::to_json(&Value::Object(pairs)))
        .map_err(|e| format!("writing {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = main_impl(&args).map_or_else(
        |msg| {
            eprintln!("perf: {msg}");
            2
        },
        |()| 0,
    );
    std::process::exit(code);
}

fn main_impl(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    let mut profile = false;
    let mut jobs: Option<usize> = None;
    let mut out = String::from("BENCH_simdsim.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--profile" => profile = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(
                    v.parse()
                        .map_err(|_| format!("--jobs expects a number, got `{v}`"))?,
                );
            }
            "--out" => out = it.next().ok_or("--out needs a value")?.clone(),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            flag => return Err(format!("unknown option `{flag}`")),
        }
    }

    // No cache: the point is to *measure* the simulation, every run.
    // Cycle accounting is opt-in here (the sweep service defaults it on):
    // the trajectory tracks the bare core unless `--profile` asks for the
    // overhead to be part of the measurement.
    let jobs = jobs.unwrap_or_else(simdsim::sweep::default_workers);
    let opts = EngineOptions::default().jobs(jobs).profile(profile);
    let scenarios = if quick {
        vec![catalog::fig4()]
    } else {
        vec![catalog::fig4(), catalog::fig5()]
    };

    let mut cells = Vec::new();
    for scenario in &scenarios {
        let report = run(scenario, &opts);
        print!("{}", simdsim::report::render_throughput(&report));
        collect(&report, &mut cells)?;
    }

    let total_instrs: u64 = cells.iter().map(|c| c.instrs).sum();
    let total_wall_ms: f64 = cells.iter().map(|c| c.wall_ms).sum();
    let total_simulate_ms: f64 = cells.iter().map(|c| c.simulate_ms).sum();
    let per_ms = |instrs: u64, ms: f64| {
        if ms > 0.0 {
            instrs as f64 / (ms / 1.0e3) / 1.0e6
        } else {
            0.0
        }
    };
    let artifact = BenchArtifact {
        bench: "simdsim-throughput".to_owned(),
        schema_version: 2,
        mode: if quick { "quick" } else { "full" }.to_owned(),
        profile,
        jobs,
        cells,
        total: BenchTotal {
            instrs: total_instrs,
            wall_ms: total_wall_ms,
            mips: per_ms(total_instrs, total_wall_ms),
            simulate_ms: total_simulate_ms,
            core_mips: per_ms(total_instrs, total_simulate_ms),
        },
    };
    write_artifact(&out, &artifact)?;
    println!(
        "wrote {out} ({} cells, {:.1} MIPS aggregate, {:.1} core MIPS)",
        artifact.cells.len(),
        artifact.total.mips,
        artifact.total.core_mips
    );
    Ok(())
}
