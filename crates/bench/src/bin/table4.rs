//! Regenerates the paper's Table IV (memory hierarchy).
fn main() {
    println!("Table IV — memory hierarchy\n");
    println!("{}", simdsim::report::render_table4());
}
