//! Regenerates the paper's Table II (benchmark set description).
fn main() {
    println!("Table II — benchmark set\n");
    println!(
        "{}",
        simdsim::report::render_table2(&simdsim::tables::table2())
    );
}
