//! `loadgen` — hammer a running `simdsim-serve` daemon from N client
//! threads and report request-latency percentiles.
//!
//! ```console
//! $ loadgen --spawn                        # self-contained: in-process server
//! $ loadgen --addr 127.0.0.1:8844          # against an external daemon
//! $ loadgen --clients 64 --requests 4 --scenario fig4 --filter /idct/
//! $ loadgen --spawn --fleet 2              # shard cells across 2 fleet workers
//! ```
//!
//! Each client drives one [`SimdsimClient`] keep-alive connection —
//! exactly the typed wire path every other consumer uses — submitting its
//! sweeps and streaming each to completion through the `?since=` cursor.
//! The summary (submit latency = `POST /v1/sweeps` round trip, complete
//! latency = submit→terminal including queueing and simulation) is
//! printed and merged into `BENCH_simdsim.json` — under the `"loadgen"`
//! key normally, or `"loadgen_fleet"` when `--fleet N` shards cells over
//! in-process workers — where CI compares p99s against the committed
//! baseline, one gate per profile.

use serde::{Serialize, Value};
use simdsim_api::{JobState, SweepRequest};
use simdsim_client::{spawn_worker, SimdsimClient, WorkerConfig};
use simdsim_serve::{Server, ServerConfig};
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: loadgen [--spawn | --addr HOST:PORT] [OPTIONS]

Load-test a simdsim-serve daemon and report latency percentiles.

options:
  --spawn          start an in-process server on an ephemeral port
  --addr H:P       target an externally running daemon (default 127.0.0.1:8844)
  --clients N      concurrent client threads (default 64)
  --requests N     sweeps submitted per client (default 2)
  --scenario NAME  scenario to submit (default fig4)
  --filter SUB     cell-label filter sent with each sweep (default /idct/)
  --fleet N        spawn N in-process fleet workers; jobs shard across them
                   instead of the server's local pool (default 0: no fleet);
                   the summary then lands under the `loadgen_fleet` key
  --out PATH       artifact to merge the summary into (default BENCH_simdsim.json)
  --help           print this help";

/// Latency percentiles in milliseconds.
#[derive(Debug, Clone, Copy, Serialize)]
struct Percentiles {
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
}

impl Percentiles {
    fn from_sorted(sorted_ms: &[f64]) -> Self {
        let at = |p: f64| {
            if sorted_ms.is_empty() {
                return 0.0;
            }
            let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
            sorted_ms[idx.min(sorted_ms.len() - 1)]
        };
        Self {
            p50: at(50.0),
            p90: at(90.0),
            p99: at(99.0),
            max: sorted_ms.last().copied().unwrap_or(0.0),
        }
    }
}

/// The `"loadgen"` section of `BENCH_simdsim.json`.
#[derive(Debug, Serialize)]
struct LoadgenSummary {
    scenario: String,
    filter: Option<String>,
    clients: usize,
    requests_per_client: usize,
    fleet_workers: usize,
    total_requests: usize,
    ok: usize,
    errors: usize,
    deduped: usize,
    wall_s: f64,
    sweeps_per_second: f64,
    submit_ms: Percentiles,
    complete_ms: Percentiles,
}

struct Cli {
    spawn: bool,
    addr: String,
    clients: usize,
    requests: usize,
    scenario: String,
    filter: Option<String>,
    fleet: usize,
    out: String,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        spawn: false,
        addr: "127.0.0.1:8844".to_owned(),
        clients: 64,
        requests: 2,
        scenario: "fig4".to_owned(),
        filter: Some("/idct/".to_owned()),
        fleet: 0,
        out: "BENCH_simdsim.json".to_owned(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let num = |v: String, flag: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("{flag} expects a number, got `{v}`"))
        };
        match a.as_str() {
            "--spawn" => cli.spawn = true,
            "--addr" => cli.addr = value("--addr")?,
            "--clients" => cli.clients = num(value("--clients")?, "--clients")?.max(1),
            "--requests" => cli.requests = num(value("--requests")?, "--requests")?.max(1),
            "--scenario" => cli.scenario = value("--scenario")?,
            "--filter" => cli.filter = Some(value("--filter")?),
            "--no-filter" => cli.filter = None,
            "--fleet" => cli.fleet = num(value("--fleet")?, "--fleet")?,
            "--out" => cli.out = value("--out")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            flag => return Err(format!("unknown option `{flag}`")),
        }
    }
    Ok(Some(cli))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = main_impl(&args).map_or_else(
        |msg| {
            eprintln!("loadgen: {msg}");
            2
        },
        |()| 0,
    );
    std::process::exit(code);
}

/// One client's share of the run: `requests` submit→poll cycles on one
/// keep-alive typed client.  Returns (submit_ms, complete_ms, errors,
/// deduped).
fn run_client(
    addr: &str,
    request: &SweepRequest,
    requests: usize,
) -> (Vec<f64>, Vec<f64>, usize, usize) {
    let timeout = Duration::from_secs(300);
    let mut submits = Vec::with_capacity(requests);
    let mut completes = Vec::with_capacity(requests);
    let mut errors = 0usize;
    let mut deduped = 0usize;
    let Ok(mut client) = SimdsimClient::connect(addr, timeout) else {
        return (submits, completes, requests, 0);
    };
    for _ in 0..requests {
        let start = Instant::now();
        let sub = match client.submit(request) {
            Ok(sub) => sub,
            Err(_) => {
                errors += 1;
                continue;
            }
        };
        submits.push(start.elapsed().as_secs_f64() * 1.0e3);
        deduped += usize::from(sub.deduped);

        match client.wait_timeout(sub.id, Duration::from_millis(5), timeout) {
            Ok(status) if status.state == JobState::Done => {
                completes.push(start.elapsed().as_secs_f64() * 1.0e3);
            }
            _ => errors += 1,
        }
    }
    (submits, completes, errors, deduped)
}

fn main_impl(args: &[String]) -> Result<(), String> {
    let Some(cli) = parse_args(args)? else {
        return Ok(());
    };

    // --spawn runs a self-contained benchmark: in-process daemon on an
    // ephemeral port with the workspace-standard cache dir.
    let server = if cli.spawn {
        Some(
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                cache_dir: Some(simdsim_bench::cache_dir()),
                ..ServerConfig::default()
            })
            .map_err(|e| format!("spawning in-process server: {e}"))?,
        )
    } else {
        None
    };
    let addr = server
        .as_ref()
        .map_or(cli.addr.clone(), |s| s.addr().to_string());

    // The fleet profile: join N in-process workers so every sweep shards
    // across the wire protocol instead of the server's local pool.
    let workers: Vec<_> = (0..cli.fleet)
        .map(|i| {
            spawn_worker(WorkerConfig {
                addr: addr.clone(),
                name: format!("loadgen-w{i}"),
                slots: 2,
                ..WorkerConfig::default()
            })
        })
        .collect();
    if !workers.is_empty() {
        let mut probe = SimdsimClient::connect(&addr, Duration::from_secs(60))
            .map_err(|e| format!("probing fleet at {addr}: {e}"))?;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let fleet = probe
                .fleet_status()
                .map_err(|e| format!("fleet status: {e}"))?;
            if fleet.workers.iter().filter(|w| w.live).count() >= cli.fleet {
                break;
            }
            if Instant::now() >= deadline {
                return Err(format!("fleet never reached {} workers", cli.fleet));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let mut request = SweepRequest::by_name(&cli.scenario);
    if let Some(f) = &cli.filter {
        request = request.filter(f.clone());
    }
    println!(
        "loadgen: {} clients x {} requests of `{}` against {addr}{}",
        cli.clients,
        cli.requests,
        cli.scenario,
        if cli.fleet > 0 {
            format!(" (fleet of {})", cli.fleet)
        } else {
            String::new()
        }
    );

    let start = Instant::now();
    let results: Vec<(Vec<f64>, Vec<f64>, usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cli.clients)
            .map(|_| {
                let addr = addr.clone();
                let request = request.clone();
                let requests = cli.requests;
                s.spawn(move || run_client(&addr, &request, requests))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let mut submit_ms: Vec<f64> = results.iter().flat_map(|(s, _, _, _)| s.clone()).collect();
    let mut complete_ms: Vec<f64> = results.iter().flat_map(|(_, c, _, _)| c.clone()).collect();
    let errors: usize = results.iter().map(|(_, _, e, _)| e).sum();
    let deduped: usize = results.iter().map(|(_, _, _, d)| d).sum();
    submit_ms.sort_by(f64::total_cmp);
    complete_ms.sort_by(f64::total_cmp);

    let total = cli.clients * cli.requests;
    let summary = LoadgenSummary {
        scenario: cli.scenario.clone(),
        filter: cli.filter.clone(),
        clients: cli.clients,
        requests_per_client: cli.requests,
        fleet_workers: cli.fleet,
        total_requests: total,
        ok: complete_ms.len(),
        errors,
        deduped,
        wall_s,
        sweeps_per_second: if wall_s > 0.0 {
            complete_ms.len() as f64 / wall_s
        } else {
            0.0
        },
        submit_ms: Percentiles::from_sorted(&submit_ms),
        complete_ms: Percentiles::from_sorted(&complete_ms),
    };

    println!(
        "{} ok / {} errors ({} deduped) in {:.2}s ({:.1} sweeps/s)",
        summary.ok, summary.errors, summary.deduped, summary.wall_s, summary.sweeps_per_second
    );
    println!(
        "submit   p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  max {:.2}ms",
        summary.submit_ms.p50, summary.submit_ms.p90, summary.submit_ms.p99, summary.submit_ms.max
    );
    println!(
        "complete p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  max {:.2}ms",
        summary.complete_ms.p50,
        summary.complete_ms.p90,
        summary.complete_ms.p99,
        summary.complete_ms.max
    );
    if let Some(server) = &server {
        print!(
            "{}",
            simdsim::report::render_server_stats(&server.metrics_snapshot())
        );
    }

    // The fleet profile measures a different path (lease/report over the
    // wire), so it keeps its own baseline section and its own CI gate.
    let section = if cli.fleet > 0 {
        "loadgen_fleet"
    } else {
        "loadgen"
    };
    merge_summary(&cli.out, section, &summary)?;
    println!("merged `{section}` summary into {}", cli.out);

    for (i, w) in workers.into_iter().enumerate() {
        let stats = w
            .stop()
            .map_err(|e| format!("fleet worker {i} failed: {e}"))?;
        println!(
            "fleet worker {i}: {} leases, {} simulated, {} cached",
            stats.leases, stats.simulated, stats.cached
        );
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if summary.ok == 0 {
        return Err("no sweep completed".to_owned());
    }
    Ok(())
}

/// Upserts one loadgen section of the (possibly existing) artifact.
fn merge_summary(path: &str, section: &str, summary: &LoadgenSummary) -> Result<(), String> {
    let base = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok());
    let mut pairs = match base {
        Some(Value::Object(pairs)) => pairs,
        _ => vec![(
            "bench".to_owned(),
            Value::Str("simdsim-throughput".to_owned()),
        )],
    };
    let entry = serde::Serialize::to_value(summary);
    match pairs.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => *v = entry,
        None => pairs.push((section.to_owned(), entry)),
    }
    std::fs::write(
        path,
        serde_json::to_string_pretty(&Value::Object(pairs)).expect("artifact serializes"),
    )
    .map_err(|e| format!("writing {path}: {e}"))
}
