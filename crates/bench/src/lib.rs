//! Benchmark-harness support: result caching shared by the per-figure
//! regenerator binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

/// Directory where regenerators cache their JSON results.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/simdsim-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Loads cached Figure-5 rows if present, otherwise runs the full sweep
/// and caches it.  Figure 5, 6 and 7 all derive from the same sweep.
#[must_use]
pub fn fig5_rows_cached() -> Vec<simdsim::experiments::AppResult> {
    let path = results_dir().join("fig5.json");
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(rows) = serde_json::from_str(&text) {
            eprintln!("(using cached {})", path.display());
            return rows;
        }
    }
    let rows = simdsim::experiments::fig5();
    std::fs::write(&path, simdsim::report::to_json(&rows)).expect("write fig5 cache");
    rows
}
