//! Benchmark-harness support shared by the regenerator binaries: artifact
//! output paths and engine options wired to the workspace-wide
//! content-addressed result cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simdsim::sweep::{catalog, EngineOptions, SweepReport};
use std::path::PathBuf;

/// Directory where regenerators write their JSON **artifacts** (rendered
/// figure rows for humans and plots; not a cache).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/simdsim-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Directory of the content-addressed result **cache** shared by every
/// binary and run (superseding the old per-figure JSON convention):
/// entries are keyed by scenario content, so a config or workload change
/// invalidates them automatically.
#[must_use]
pub fn cache_dir() -> PathBuf {
    PathBuf::from("target/simdsim-cache")
}

/// Engine options for regenerator binaries: default worker pool, cache
/// enabled at [`cache_dir`].
#[must_use]
pub fn engine_options() -> EngineOptions {
    EngineOptions::default().cache(cache_dir())
}

fn note_reuse(report: &SweepReport) {
    eprintln!(
        "({}: {} cells — {} cached, {} simulated)",
        report.scenario,
        report.outcomes.len(),
        report.cached(),
        report.executed()
    );
}

/// Runs the Figure-4 sweep through the result cache.
#[must_use]
pub fn fig4_rows_cached() -> Vec<simdsim::experiments::KernelResult> {
    let report = simdsim::sweep::run(&catalog::fig4(), &engine_options());
    note_reuse(&report);
    simdsim::experiments::fig4_rows(&report).unwrap_or_else(|e| panic!("figure 4 sweep: {e}"))
}

/// Runs the Figure-5 sweep (shared by the `fig5`/`fig6`/`fig7` binaries)
/// through the result cache, and refreshes the `fig5.json` artifact under
/// [`results_dir`].
#[must_use]
pub fn fig5_rows_cached() -> Vec<simdsim::experiments::AppResult> {
    let report = simdsim::sweep::run(&catalog::fig5(), &engine_options());
    note_reuse(&report);
    let rows =
        simdsim::experiments::fig5_rows(&report).unwrap_or_else(|e| panic!("figure 5 sweep: {e}"));
    let path = results_dir().join("fig5.json");
    std::fs::write(&path, simdsim::report::to_json(&rows)).expect("write fig5 artifact");
    rows
}
