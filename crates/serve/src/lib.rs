//! `simdsim-serve` — the serving layer of the workspace.
//!
//! Every consumer used to shell into the `sweep` CLI on the local
//! machine; this crate exposes the same engine as a long-lived HTTP
//! service speaking the **typed, versioned `/v1` contract** defined in
//! `simdsim-api` (consumed by `simdsim-client`):
//!
//! * a dependency-free **HTTP/1.1** layer over [`std::net`] (the build
//!   environment has no registry access, so the request parser is
//!   hand-rolled like the workspace's serde shims — see [`http`]);
//! * a bounded **job queue** ([`jobs`]) between the request path and the
//!   sweep engine, with live per-cell progress via
//!   [`simdsim_sweep::run_with_progress`], **cursor streaming** of cell
//!   results while a job runs (`GET /v1/sweeps/{id}/cells?since=N`
//!   long-poll), **cooperative cancellation** (`DELETE /v1/sweeps/{id}`),
//!   **coalescing** of identical queued/running submissions onto one
//!   engine run, and a **configurable retention policy** (count cap +
//!   TTL) on finished jobs;
//! * **metrics** ([`metrics`]) in the Prometheus text format: requests,
//!   queue depth, cache hit ratio, coalesce/cancel tallies, simulated
//!   MIPS, fleet liveness;
//! * a **worker fleet coordinator** ([`fleet`]): worker processes
//!   register over `/v1/workers/*`, lease cells, execute them with the
//!   very same deterministic engine, and report per-cell results; jobs
//!   are sharded across live workers through the engine's
//!   [`simdsim_sweep::CellExecutor`] seam ([`exec`]), with lease
//!   timeouts re-queueing cells from dead workers, so a sharded sweep is
//!   bit-identical to a single-process one even across mid-job worker
//!   crashes.
//!
//! Results flow through the content-addressed store, so resubmitting an
//! identical sweep is served from cache without re-simulating a single
//! cell — and a submission identical to one still queued or running does
//! not even enqueue: it is coalesced onto the in-flight job, and both ids
//! observe the same deterministic, bit-identical statistics.
//!
//! The pre-v1 unversioned routes remain as deprecated aliases onto the
//! v1 handlers; see [`server`] for the endpoint table.
//!
//! # Example
//!
//! ```
//! use simdsim_client::SimdsimClient;
//! use simdsim_serve::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".to_owned(), // ephemeral port
//!     cache_dir: None,                // no cross-run state in doctests
//!     ..ServerConfig::default()
//! })
//! .expect("bind");
//! let mut client =
//!     SimdsimClient::connect(server.addr(), Duration::from_secs(5)).expect("connect");
//! let health = client.health().expect("healthz");
//! assert_eq!(health.status, "ok");
//! assert_eq!(health.version, simdsim_api::API_VERSION);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod fleet;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;

pub use exec::{run_job, spawn_workers, wait_finished, ExecContext};
pub use fleet::{Fleet, FleetConfig, FleetExecutor};
pub use http::{Request, Response};
pub use jobs::{CancelOutcome, Job, JobQueue, RetentionPolicy, Submission};
pub use metrics::{render_prometheus, Metrics, MetricsSnapshot};
pub use server::{Server, ServerConfig};

// The wire types the server speaks, re-exported for embedders.
pub use simdsim_api::{ApiError, ErrorCode, JobState, SweepStatus};
