//! `simdsim-serve` — the serving layer of the workspace.
//!
//! Every consumer used to shell into the `sweep` CLI on the local
//! machine; this crate exposes the same engine as a long-lived HTTP
//! service, turning PR 2's work-stealing scheduler and content-addressed
//! result store plus PR 3's allocation-free hot loop into a daemon that
//! serves sweeps to many concurrent clients:
//!
//! * a dependency-free **HTTP/1.1** layer over [`std::net`] (the build
//!   environment has no registry access, so the request parser is
//!   hand-rolled like the workspace's serde shims — see [`http`]);
//! * a bounded **job queue** ([`jobs`]) between the request path and the
//!   sweep engine, with live per-cell progress via
//!   [`simdsim_sweep::run_with_progress`];
//! * **metrics** ([`metrics`]) in the Prometheus text format: requests,
//!   queue depth, cache hit ratio, simulated MIPS;
//! * a minimal **client** ([`client`]) for the `loadgen` bench binary and
//!   the integration tests.
//!
//! Results flow through the content-addressed store, so resubmitting an
//! identical sweep is served from cache without re-simulating a single
//! cell — and because the engine is deterministic, concurrent clients
//! submitting the same sweep all receive bit-identical statistics.
//!
//! # Example
//!
//! ```
//! use simdsim_serve::{Client, Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".to_owned(), // ephemeral port
//!     cache_dir: None,                // no cross-run state in doctests
//!     ..ServerConfig::default()
//! })
//! .expect("bind");
//! let mut client = Client::connect(server.addr(), Duration::from_secs(5)).expect("connect");
//! let resp = client.get("/healthz").expect("healthz");
//! assert_eq!(resp.status, 200);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;

pub use client::{Client, ClientResponse};
pub use http::{Request, Response};
pub use jobs::{Job, JobQueue, JobResult, JobState};
pub use metrics::{render_prometheus, Metrics, MetricsSnapshot};
pub use server::{Server, ServerConfig};
