//! The coordinator side of the worker fleet: a registry of worker
//! processes, a lease board sharding queued cells across them, and the
//! [`FleetExecutor`] that plugs the whole thing into the engine's
//! [`CellExecutor`] seam.
//!
//! The protocol is pull-based.  Workers register, then long-poll
//! `POST /v1/workers/{id}/lease` for cells; the coordinator answers with a
//! **lease** — a batch of work units with a TTL — and expects one report
//! per cell as it resolves.  Every fleet request from a worker doubles as
//! a liveness proof, and each accepted report refreshes the lease, so only
//! a single cell outrunning the TTL risks a re-queue.  A worker that stops
//! heartbeating for ~3 intervals is evicted and its leased cells go back
//! on the queue, where another worker (or the coordinator itself, once no
//! live worker remains) picks them up — the engine above never notices.
//!
//! Reports are keyed by **work-unit id**, not by lease: the first report
//! for a unit wins and any later one is a stale no-op.  The simulator is
//! deterministic, so a duplicate (a re-queued cell finishing on two
//! workers) carries bit-identical statistics and dropping it is safe.

use crate::metrics::Metrics;
use simdsim_api::{
    ApiError, ErrorCode, FleetStatus, HeartbeatResponse, Lease, LeaseRequest, LeaseResponse,
    LeasedCell, RegisterRequest, RegisterResponse, ReportRequest, ReportResponse, UnitResult,
    WorkerInfo,
};
use simdsim_obs::{Event, FlightRecorder};
use simdsim_sweep::{
    CellExecutor, CellTask, LocalExecutor, SweepError, TaskOutcome, CANCELLED_CELL_MESSAGE,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Heartbeat intervals a worker may miss before it is evicted and its
/// leased cells are re-queued.
pub const LIVENESS_INTERVALS: u32 = 3;

/// Upper bound on the lease long-poll, mirroring the cell-stream cap.
pub const MAX_LEASE_WAIT: Duration = Duration::from_secs(20);

/// How often a waiting executor re-checks lease expiry and worker health.
const EXECUTOR_TICK: Duration = Duration::from_millis(100);

/// The fleet's timing contract, advertised to workers at registration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// How often workers must heartbeat (any fleet request counts).
    pub heartbeat_interval: Duration,
    /// How long a lease stays valid without a report before its cells are
    /// re-queued.
    pub lease_ttl: Duration,
    /// Hard cap on cells per lease, whatever the worker asks for.
    pub max_lease_cells: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(1000),
            lease_ttl: Duration::from_secs(30),
            max_lease_cells: 8,
        }
    }
}

#[derive(Debug)]
struct WorkerState {
    name: String,
    slots: u64,
    last_seen: Instant,
    leased: u64,
    completed: u64,
    /// Content-address keys known to sit in the worker's local result
    /// store: seeded from `cache_keys` at registration and grown with
    /// every result the worker reports.  Used for lease affinity.
    keys: HashSet<String>,
}

/// One unresolved cell: which batch wants it, which lease (if any) holds
/// it, the task itself, and its content-address key for lease affinity.
#[derive(Debug)]
struct OpenUnit {
    batch: u64,
    lease: Option<u64>,
    key: String,
    task: CellTask,
}

#[derive(Debug)]
struct LeaseState {
    worker: u64,
    units: Vec<u64>,
    expires: Instant,
    /// When the lease was granted — the grant→report latency observed
    /// into `simdsim_fleet_report_latency_ms` on the first report.
    granted: Instant,
}

/// One `FleetExecutor::execute` call in flight: resolved-but-undrained
/// outcomes plus the count of units still open.
#[derive(Debug, Default)]
struct BatchState {
    outcomes: Vec<TaskOutcome>,
    open: usize,
    cancelled: bool,
    /// The job this batch executes, threaded into leases and events.
    job: Option<u64>,
    /// The job's trace id, threaded into leases and events.
    trace: Option<String>,
}

#[derive(Debug, Default)]
struct FleetState {
    next_worker: u64,
    next_lease: u64,
    next_unit: u64,
    next_batch: u64,
    workers: BTreeMap<u64, WorkerState>,
    /// Unleased unit ids, dispatch order.  Re-queued units go to the
    /// front so a recovered cell is not penalised a second full queue
    /// wait.  Ids whose unit has since resolved are skipped lazily.
    pending: VecDeque<u64>,
    units: HashMap<u64, OpenUnit>,
    leases: BTreeMap<u64, LeaseState>,
    batches: HashMap<u64, BatchState>,
}

/// What [`Fleet::poll_batch`] observed for one batch.
#[derive(Debug)]
pub(crate) struct BatchPoll {
    /// Outcomes resolved since the last poll.
    pub outcomes: Vec<TaskOutcome>,
    /// Units still unresolved (including any in `local`).
    pub open: usize,
    /// Unleased tasks handed back for in-process execution because no
    /// live worker remains to lease them.
    pub local: Vec<CellTask>,
}

/// The worker registry plus the lease board, shared between the HTTP
/// handlers (register/heartbeat/lease/report) and the job executors.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    metrics: Arc<Metrics>,
    recorder: Arc<FlightRecorder>,
    state: Mutex<FleetState>,
    /// Notified when work lands on the queue — what lease long-polls wait
    /// on.
    work_cv: Condvar,
    /// Notified when a report resolves units — what executors wait on.
    done_cv: Condvar,
}

impl Fleet {
    /// An empty fleet with the given timing contract, feeding lease and
    /// worker lifecycle events into `recorder`.
    #[must_use]
    pub fn new(cfg: FleetConfig, metrics: Arc<Metrics>, recorder: Arc<FlightRecorder>) -> Self {
        Self {
            cfg,
            metrics,
            recorder,
            state: Mutex::new(FleetState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// The fleet's timing contract.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    fn worker_ttl(&self) -> Duration {
        self.cfg.heartbeat_interval * LIVENESS_INTERVALS
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FleetState> {
        self.state.lock().expect("fleet lock")
    }

    /// Registers a worker and returns its id plus the cadence contract.
    pub fn register(&self, req: &RegisterRequest) -> RegisterResponse {
        let mut st = self.lock();
        self.sweep_locked(&mut st);
        st.next_worker += 1;
        let id = st.next_worker;
        st.workers.insert(
            id,
            WorkerState {
                name: req.name.clone(),
                slots: req.slots,
                last_seen: Instant::now(),
                leased: 0,
                completed: 0,
                keys: req.cache_keys.iter().cloned().collect(),
            },
        );
        drop(st);
        self.metrics
            .fleet_workers_registered
            .fetch_add(1, Ordering::Relaxed);
        self.recorder.record(
            Event::new("worker.register")
                .with_worker(id)
                .with_detail(format!("{} ({} slots)", req.name, req.slots)),
        );
        RegisterResponse {
            worker_id: id,
            heartbeat_interval_ms: self.cfg.heartbeat_interval.as_millis() as u64,
            lease_ttl_ms: self.cfg.lease_ttl.as_millis() as u64,
        }
    }

    fn unknown_worker(id: u64) -> ApiError {
        ApiError::new(
            ErrorCode::UnknownWorker,
            format!("no worker `{id}` (evicted or never registered); re-register"),
        )
    }

    /// Refreshes a worker's liveness.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownWorker`] when the id is unregistered or the
    /// worker was already evicted for missing heartbeats.
    pub fn heartbeat(&self, worker: u64) -> Result<HeartbeatResponse, ApiError> {
        let mut st = self.lock();
        self.sweep_locked(&mut st);
        let w = st
            .workers
            .get_mut(&worker)
            .ok_or_else(|| Self::unknown_worker(worker))?;
        w.last_seen = Instant::now();
        Ok(HeartbeatResponse {
            worker_id: worker,
            live_workers: st.workers.len() as u64,
        })
    }

    /// Grants a lease of up to `req.max_cells` queued cells, long-polling
    /// up to `req.wait_ms` (capped at [`MAX_LEASE_WAIT`]) when the queue
    /// is empty.  Answers `lease: null` when the budget expires dry.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownWorker`] as for [`Fleet::heartbeat`] — also
    /// mid-poll, should the worker be evicted while waiting.
    pub fn lease(&self, worker: u64, req: &LeaseRequest) -> Result<LeaseResponse, ApiError> {
        let wait = Duration::from_millis(req.wait_ms).min(MAX_LEASE_WAIT);
        let deadline = Instant::now() + wait;
        // Re-wake at least every half heartbeat interval: the open poll
        // itself is the worker's liveness proof and must keep refreshing
        // `last_seen` while it waits.
        let tick = (self.cfg.heartbeat_interval / 2).max(Duration::from_millis(10));
        let mut st = self.lock();
        loop {
            self.sweep_locked(&mut st);
            let w = st
                .workers
                .get_mut(&worker)
                .ok_or_else(|| Self::unknown_worker(worker))?;
            w.last_seen = Instant::now();
            if let Some(lease) = self.try_grant_locked(&mut st, worker, req.max_cells) {
                return Ok(LeaseResponse { lease: Some(lease) });
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(LeaseResponse { lease: None });
            }
            let (guard, _) = self
                .work_cv
                .wait_timeout(st, tick.min(deadline - now))
                .expect("fleet lock");
            st = guard;
        }
    }

    fn try_grant_locked(&self, st: &mut FleetState, worker: u64, max_cells: u64) -> Option<Lease> {
        let cap = max_cells.clamp(1, self.cfg.max_lease_cells) as usize;
        // Affinity pass: offer this worker the queued cells whose content
        // address it already caches — those resolve as cache probes, not
        // simulations.  Ids resolved or re-routed since queueing are
        // dropped lazily here, same as the dispatch-order pass below.
        let mut picked = Vec::new();
        let mut affinity = 0u64;
        if let Some(w) = st.workers.get(&worker) {
            if !w.keys.is_empty() {
                let keys = &w.keys;
                let units = &st.units;
                st.pending.retain(|&unit| {
                    let Some(open) = units.get(&unit) else {
                        return false;
                    };
                    if picked.len() < cap && keys.contains(&open.key) {
                        picked.push(unit);
                        return false;
                    }
                    true
                });
                affinity = picked.len() as u64;
            }
        }
        // Dispatch-order pass fills the remainder.
        while picked.len() < cap {
            let Some(unit) = st.pending.pop_front() else {
                break;
            };
            if st.units.contains_key(&unit) {
                picked.push(unit);
            }
        }
        let cells: Vec<LeasedCell> = picked
            .iter()
            .map(|&unit| {
                let open = st.units.get(&unit).expect("picked unit");
                let batch = st.batches.get(&open.batch);
                LeasedCell {
                    unit,
                    cell: open.task.cell.clone(),
                    job: batch.and_then(|b| b.job),
                    trace: batch.and_then(|b| b.trace.clone()),
                }
            })
            .collect();
        if cells.is_empty() {
            return None;
        }
        self.metrics
            .fleet_leases_affinity
            .fetch_add(affinity, Ordering::Relaxed);
        st.next_lease += 1;
        let lease_id = st.next_lease;
        for c in &cells {
            st.units.get_mut(&c.unit).expect("leased unit").lease = Some(lease_id);
        }
        let now = Instant::now();
        st.leases.insert(
            lease_id,
            LeaseState {
                worker,
                units: cells.iter().map(|c| c.unit).collect(),
                expires: now + self.cfg.lease_ttl,
                granted: now,
            },
        );
        let granted = cells.len() as u64;
        if let Some(w) = st.workers.get_mut(&worker) {
            w.leased += granted;
        }
        self.metrics
            .fleet_leases_granted
            .fetch_add(1, Ordering::Relaxed);
        let mut grant = Event::new("lease.grant")
            .with_trace(cells[0].trace.clone())
            .with_worker(worker)
            .with_detail(format!(
                "lease {lease_id}: {granted} cells ({affinity} affine)"
            ));
        grant.job = cells[0].job;
        self.recorder.record(grant);
        Some(Lease {
            lease_id,
            ttl_ms: self.cfg.lease_ttl.as_millis() as u64,
            cells,
        })
    }

    /// Accepts a worker's per-cell results.  Units already resolved (a
    /// duplicate report, or a re-queued cell that finished elsewhere
    /// first) count as `stale` and change nothing.  Every accepted report
    /// refreshes the lease it names.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownWorker`] as for [`Fleet::heartbeat`].
    pub fn report(&self, worker: u64, req: &ReportRequest) -> Result<ReportResponse, ApiError> {
        let mut st = self.lock();
        self.sweep_locked(&mut st);
        if !st.workers.contains_key(&worker) {
            return Err(Self::unknown_worker(worker));
        }
        // Measure grant→report latency up front: resolving the lease's
        // final unit removes the lease, so a post-resolve lookup would
        // miss exactly the reports that complete a lease.
        let grant_latency = st.leases.get(&req.lease_id).map(|l| l.granted.elapsed());
        let (mut accepted, mut stale) = (0u64, 0u64);
        let mut trace = None;
        let mut keys = Vec::new();
        for r in &req.results {
            match self.resolve_unit_locked(&mut st, r) {
                Some((t, key)) => {
                    accepted += 1;
                    trace = trace.or(t);
                    keys.push(key);
                }
                None => stale += 1,
            }
        }
        if let Some(l) = st.leases.get_mut(&req.lease_id) {
            l.expires = Instant::now() + self.cfg.lease_ttl;
        }
        if let Some(w) = st.workers.get_mut(&worker) {
            w.last_seen = Instant::now();
            w.completed += accepted;
            // Whatever a worker resolves it now caches locally, so future
            // duplicates of these cells lease back to it with affinity.
            w.keys.extend(keys);
        }
        drop(st);
        self.metrics
            .fleet_cells_reported
            .fetch_add(accepted, Ordering::Relaxed);
        self.metrics
            .fleet_reports_stale
            .fetch_add(stale, Ordering::Relaxed);
        if let Some(d) = grant_latency {
            self.metrics.fleet_report_ms.observe(d.as_secs_f64() * 1e3);
        }
        // The worker's own per-unit spans (tagged with the originating
        // trace) land in the coordinator's recorder, so one trace id
        // shows both sides of the fan-out.
        for span in &req.spans {
            let mut ev = span.to_event();
            if ev.worker.is_none() {
                ev.worker = Some(worker);
            }
            self.recorder.record(ev);
        }
        let mut ev = Event::new("lease.report")
            .with_trace(trace)
            .with_worker(worker)
            .with_detail(format!(
                "lease {}: {accepted} accepted, {stale} stale",
                req.lease_id
            ));
        if let Some(d) = grant_latency {
            ev = ev.with_dur_ms(d.as_secs_f64() * 1e3);
        }
        self.recorder.record(ev);
        if accepted > 0 {
            self.done_cv.notify_all();
        }
        Ok(ReportResponse { accepted, stale })
    }

    /// Resolves one reported unit into its batch.  `None` means the unit
    /// was no longer open (stale); the accepted case carries the unit's
    /// batch trace (for the caller's `lease.report` event) and its
    /// content-address key (for worker affinity tracking).
    fn resolve_unit_locked(
        &self,
        st: &mut FleetState,
        r: &UnitResult,
    ) -> Option<(Option<String>, String)> {
        let open = st.units.remove(&r.unit)?;
        if let Some(lid) = open.lease {
            if let Some(l) = st.leases.get_mut(&lid) {
                l.units.retain(|&u| u != r.unit);
                let lease_worker = l.worker;
                let empty = l.units.is_empty();
                if empty {
                    st.leases.remove(&lid);
                }
                if let Some(w) = st.workers.get_mut(&lease_worker) {
                    w.leased = w.leased.saturating_sub(1);
                }
            }
        }
        let stats = match (&r.stats, &r.error) {
            (Some(s), _) => Ok(s.clone()),
            (None, Some(e)) => Err(SweepError::new(&open.task.cell, e.clone())),
            (None, None) => Err(SweepError::new(
                &open.task.cell,
                "worker reported neither stats nor error",
            )),
        };
        let wall = if r.wall_ms.is_finite() && r.wall_ms > 0.0 {
            Duration::from_secs_f64(r.wall_ms / 1000.0)
        } else {
            Duration::ZERO
        };
        let outcome = TaskOutcome {
            index: open.task.index,
            cached: r.cached,
            stats,
            wall,
            phases: r.phases.unwrap_or_default(),
        };
        let mut trace = None;
        if let Some(b) = st.batches.get_mut(&open.batch) {
            b.outcomes.push(outcome);
            b.open = b.open.saturating_sub(1);
            trace = b.trace.clone();
        }
        Some((trace, open.key))
    }

    /// The fleet listing: every registered worker plus the queue depth.
    #[must_use]
    pub fn status(&self) -> FleetStatus {
        let mut st = self.lock();
        self.sweep_locked(&mut st);
        let now = Instant::now();
        let ttl = self.worker_ttl();
        let workers = st
            .workers
            .iter()
            .map(|(&id, w)| WorkerInfo {
                id,
                name: w.name.clone(),
                slots: w.slots,
                live: now.duration_since(w.last_seen) < ttl,
                leased: w.leased,
                completed: w.completed,
                last_seen_ms: now.duration_since(w.last_seen).as_millis() as u64,
            })
            .collect();
        FleetStatus {
            workers,
            pending_cells: Self::pending_locked(&st),
        }
    }

    fn pending_locked(st: &FleetState) -> u64 {
        st.pending
            .iter()
            .filter(|u| st.units.contains_key(u))
            .count() as u64
    }

    /// Workers currently within their liveness contract.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        let mut st = self.lock();
        self.sweep_locked(&mut st);
        st.workers.len()
    }

    /// Cells queued for dispatch but not currently leased.
    #[must_use]
    pub fn pending_cells(&self) -> u64 {
        let mut st = self.lock();
        self.sweep_locked(&mut st);
        Self::pending_locked(&st)
    }

    /// Evicts workers past the liveness contract (re-queueing their
    /// leased cells) and expires overdue leases.
    fn sweep_locked(&self, st: &mut FleetState) {
        let now = Instant::now();
        let ttl = self.worker_ttl();
        let dead: Vec<u64> = st
            .workers
            .iter()
            .filter(|(_, w)| now.duration_since(w.last_seen) >= ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            st.workers.remove(&id);
            let orphaned: Vec<u64> = st
                .leases
                .iter()
                .filter(|(_, l)| l.worker == id)
                .map(|(&lid, _)| lid)
                .collect();
            let mut requeued = 0;
            for lid in orphaned {
                let lease = st.leases.remove(&lid).expect("orphaned lease");
                requeued += lease.units.len();
                self.requeue_locked(st, &lease.units);
            }
            self.metrics
                .fleet_workers_evicted
                .fetch_add(1, Ordering::Relaxed);
            self.recorder.record(
                Event::new("worker.evict")
                    .with_worker(id)
                    .with_detail(format!(
                        "missed {LIVENESS_INTERVALS} heartbeats; {requeued} leased cells requeued"
                    )),
            );
        }
        let expired: Vec<u64> = st
            .leases
            .iter()
            .filter(|(_, l)| now >= l.expires)
            .map(|(&lid, _)| lid)
            .collect();
        for lid in expired {
            let lease = st.leases.remove(&lid).expect("expired lease");
            if let Some(w) = st.workers.get_mut(&lease.worker) {
                w.leased = w.leased.saturating_sub(lease.units.len() as u64);
            }
            self.requeue_locked(st, &lease.units);
            self.metrics
                .fleet_leases_expired
                .fetch_add(1, Ordering::Relaxed);
            self.recorder.record(
                Event::new("lease.expire")
                    .with_worker(lease.worker)
                    .with_detail(format!("lease {lid}: {} cells past TTL", lease.units.len())),
            );
        }
    }

    /// Puts orphaned units back on the queue — or, for cancelled batches,
    /// resolves them as cancelled on the spot (nobody should re-run them).
    fn requeue_locked(&self, st: &mut FleetState, units: &[u64]) {
        let mut resolved = false;
        let mut requeued = false;
        for &u in units {
            let Some(open) = st.units.get(&u) else {
                continue; // already resolved by a late report
            };
            let batch = open.batch;
            if st.batches.get(&batch).is_none_or(|b| b.cancelled) {
                let open = st.units.remove(&u).expect("open unit");
                if let Some(b) = st.batches.get_mut(&batch) {
                    b.outcomes.push(cancelled_outcome(&open.task));
                    b.open = b.open.saturating_sub(1);
                    resolved = true;
                }
            } else {
                st.units.get_mut(&u).expect("open unit").lease = None;
                st.pending.push_front(u);
                requeued = true;
                self.metrics
                    .fleet_cells_requeued
                    .fetch_add(1, Ordering::Relaxed);
                let b = st.batches.get(&batch);
                let mut ev = Event::new("cell.requeue")
                    .with_trace(b.and_then(|b| b.trace.clone()))
                    .with_unit(u);
                ev.job = b.and_then(|b| b.job);
                self.recorder.record(ev);
            }
        }
        if resolved {
            self.done_cv.notify_all();
        }
        if requeued {
            self.work_cv.notify_all();
        }
    }

    /// Opens a batch: queues every task and returns the batch id the
    /// executor polls.  `job` and `trace` identify the submitting job and
    /// ride on every lease and event the batch produces.
    pub(crate) fn open_batch(
        &self,
        tasks: Vec<CellTask>,
        job: Option<u64>,
        trace: Option<String>,
    ) -> u64 {
        let mut st = self.lock();
        st.next_batch += 1;
        let batch = st.next_batch;
        let open = tasks.len();
        for task in tasks {
            st.next_unit += 1;
            let unit = st.next_unit;
            let key = simdsim_sweep::cell_key(&task.cell, &task.cfg)
                .as_str()
                .to_owned();
            st.units.insert(
                unit,
                OpenUnit {
                    batch,
                    lease: None,
                    key,
                    task,
                },
            );
            st.pending.push_back(unit);
        }
        st.batches.insert(
            batch,
            BatchState {
                outcomes: Vec::new(),
                open,
                cancelled: false,
                job,
                trace,
            },
        );
        drop(st);
        self.work_cv.notify_all();
        batch
    }

    /// Resolves every still-unleased unit of a cancelled batch as a
    /// cancelled error.  Leased units stay out: their workers run them to
    /// completion (or their leases expire), mirroring the local engine's
    /// "stop between cells, never mid-simulation" contract.
    fn cancel_batch_locked(&self, st: &mut FleetState, batch: u64) {
        let Some(b) = st.batches.get_mut(&batch) else {
            return;
        };
        if b.cancelled {
            return;
        }
        b.cancelled = true;
        let FleetState {
            pending,
            units,
            batches,
            ..
        } = st;
        let b = batches.get_mut(&batch).expect("batch");
        pending.retain(|u| {
            let mine = units.get(u).is_some_and(|o| o.batch == batch);
            if mine {
                let open = units.remove(u).expect("open unit");
                b.outcomes.push(cancelled_outcome(&open.task));
                b.open = b.open.saturating_sub(1);
            }
            !mine
        });
    }

    /// One executor poll: sweeps expiries, applies cancellation, drains
    /// resolved outcomes, and — when no live worker remains — hands back
    /// the batch's unleased tasks for in-process execution.
    pub(crate) fn poll_batch(&self, batch: u64, cancelled: bool) -> BatchPoll {
        let mut st = self.lock();
        self.sweep_locked(&mut st);
        if cancelled {
            self.cancel_batch_locked(&mut st, batch);
        }
        let mut local = Vec::new();
        if st.workers.is_empty() {
            let FleetState { pending, units, .. } = &mut *st;
            pending.retain(|u| {
                let mine = units.get(u).is_some_and(|o| o.batch == batch);
                if mine {
                    local.push(units.remove(u).expect("open unit").task);
                }
                !mine
            });
        }
        let Some(b) = st.batches.get_mut(&batch) else {
            return BatchPoll {
                outcomes: Vec::new(),
                open: 0,
                local,
            };
        };
        BatchPoll {
            outcomes: std::mem::take(&mut b.outcomes),
            open: b.open,
            local,
        }
    }

    /// Marks one locally-executed unit of `batch` resolved.
    pub(crate) fn resolve_local(&self, batch: u64) {
        let mut st = self.lock();
        if let Some(b) = st.batches.get_mut(&batch) {
            b.open = b.open.saturating_sub(1);
        }
    }

    /// Blocks until `batch` has undrained outcomes (or is done), up to
    /// `timeout`.
    pub(crate) fn wait_batch(&self, batch: u64, timeout: Duration) {
        let st = self.lock();
        let ready = st
            .batches
            .get(&batch)
            .is_none_or(|b| !b.outcomes.is_empty() || b.open == 0);
        if ready {
            return;
        }
        let _ = self.done_cv.wait_timeout(st, timeout).expect("fleet lock");
    }

    /// Closes a finished batch.
    pub(crate) fn close_batch(&self, batch: u64) {
        self.lock().batches.remove(&batch);
    }
}

fn cancelled_outcome(task: &CellTask) -> TaskOutcome {
    TaskOutcome {
        index: task.index,
        cached: false,
        stats: Err(SweepError::new(&task.cell, CANCELLED_CELL_MESSAGE)),
        wall: Duration::ZERO,
        phases: Default::default(),
    }
}

/// The remote executor: cells go to the fleet's lease board and resolve
/// through worker reports.  Should the last live worker die mid-batch,
/// the orphaned cells re-queue and quietly execute in-process via
/// [`LocalExecutor`] — a job never strands on an empty fleet.
#[derive(Debug)]
pub struct FleetExecutor {
    fleet: Arc<Fleet>,
    /// Pool size for the local fallback path.
    local_jobs: Option<usize>,
    /// The submitting job's id, stamped on leases and fleet events.
    job: Option<u64>,
    /// The submitting job's trace id, stamped on leases and fleet events.
    trace: Option<String>,
}

impl FleetExecutor {
    /// An executor dispatching onto `fleet`.
    #[must_use]
    pub fn new(fleet: Arc<Fleet>, local_jobs: Option<usize>) -> Self {
        Self {
            fleet,
            local_jobs,
            job: None,
            trace: None,
        }
    }

    /// Tags everything this executor dispatches with the submitting job's
    /// id and trace, so fleet events and worker spans link back to it.
    #[must_use]
    pub fn for_job(mut self, job: u64, trace: Option<String>) -> Self {
        self.job = Some(job);
        self.trace = trace;
        self
    }
}

impl CellExecutor for FleetExecutor {
    fn execute(
        &self,
        tasks: Vec<CellTask>,
        cancel: Option<&AtomicBool>,
        done: &(dyn Fn(TaskOutcome) + Sync),
    ) {
        if tasks.is_empty() {
            return;
        }
        let batch = self.fleet.open_batch(tasks, self.job, self.trace.clone());
        loop {
            let cancelled = cancel.is_some_and(|c| c.load(Ordering::Relaxed));
            let poll = self.fleet.poll_batch(batch, cancelled);
            for out in poll.outcomes {
                done(out);
            }
            if !poll.local.is_empty() {
                LocalExecutor::new(self.local_jobs).execute(poll.local, cancel, &|out| {
                    self.fleet.resolve_local(batch);
                    done(out);
                });
                continue; // re-poll: the batch may be done now
            }
            if poll.open == 0 {
                break;
            }
            self.fleet.wait_batch(batch, EXECUTOR_TICK);
        }
        self.fleet.close_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_api::CellStats;
    use simdsim_isa::Ext;
    use simdsim_sweep::{execute_cell, Cell, OverrideSet, WorkloadRef};
    use std::sync::atomic::AtomicUsize;

    fn task(index: usize) -> CellTask {
        task_way(index, 2)
    }

    fn task_way(index: usize, way: usize) -> CellTask {
        let cell = Cell {
            scenario: "t".to_owned(),
            workload: WorkloadRef::Kernel("idct".to_owned()),
            ext: Ext::Mmx64,
            way,
            overrides: OverrideSet::default(),
            instr_limit: 200_000,
        };
        let cfg = cell.config().expect("paper config");
        CellTask {
            index,
            cell,
            cfg,
            profile: true,
        }
    }

    fn fake_stats() -> CellStats {
        CellStats {
            cycles: 100,
            instrs: 200,
            ipc: 2.0,
            vector_cycles: 10,
            scalar_cycles: 90,
            branches: 5,
            mispredicts: 1,
            counts: Default::default(),
            l1: Default::default(),
            l2: Default::default(),
            memsys: Default::default(),
            blocks_cached: 4,
            block_hits: 50,
            side_exits: 0,
            profile: None,
        }
    }

    fn fast_fleet(heartbeat_ms: u64, lease_ttl_ms: u64) -> Fleet {
        Fleet::new(
            FleetConfig {
                heartbeat_interval: Duration::from_millis(heartbeat_ms),
                lease_ttl: Duration::from_millis(lease_ttl_ms),
                max_lease_cells: 8,
            },
            Arc::new(Metrics::default()),
            Arc::new(FlightRecorder::new(256)),
        )
    }

    #[test]
    fn register_lease_report_round_trip() {
        let fleet = fast_fleet(10_000, 60_000);
        let reg = fleet.register(&RegisterRequest::default());
        assert_eq!(reg.worker_id, 1);
        assert_eq!(fleet.live_workers(), 1);

        let batch = fleet.open_batch(vec![task(0), task(1)], None, None);
        assert_eq!(fleet.pending_cells(), 2);
        let lease = fleet
            .lease(
                reg.worker_id,
                &LeaseRequest {
                    max_cells: 8,
                    wait_ms: 0,
                },
            )
            .expect("known worker")
            .lease
            .expect("work available");
        assert_eq!(lease.cells.len(), 2);
        assert_eq!(fleet.pending_cells(), 0);
        assert_eq!(fleet.status().workers[0].leased, 2);

        let results: Vec<UnitResult> = lease
            .cells
            .iter()
            .map(|c| UnitResult {
                unit: c.unit,
                cached: false,
                wall_ms: 1.0,
                stats: Some(fake_stats()),
                error: None,
                phases: None,
            })
            .collect();
        let resp = fleet
            .report(
                reg.worker_id,
                &ReportRequest {
                    lease_id: lease.lease_id,
                    results: results.clone(),
                    spans: Vec::new(),
                },
            )
            .expect("known worker");
        assert_eq!((resp.accepted, resp.stale), (2, 0));

        // A duplicate report is a stale no-op.
        let resp = fleet
            .report(
                reg.worker_id,
                &ReportRequest {
                    lease_id: lease.lease_id,
                    results,
                    spans: Vec::new(),
                },
            )
            .expect("known worker");
        assert_eq!((resp.accepted, resp.stale), (0, 2));

        let poll = fleet.poll_batch(batch, false);
        assert_eq!(poll.outcomes.len(), 2);
        assert_eq!(poll.open, 0);
        assert!(poll.local.is_empty(), "a live worker blocks local fallback");
        let info = fleet.status();
        assert_eq!(info.workers[0].leased, 0);
        assert_eq!(info.workers[0].completed, 2);
    }

    #[test]
    fn leases_prefer_workers_that_cache_the_cell() {
        let fleet = fast_fleet(10_000, 60_000);
        // The hot worker registered advertising the way-4 cell's key;
        // nothing else in the batch is in anyone's cache.
        let hot_task = task_way(3, 4);
        let key = simdsim_sweep::cell_key(&hot_task.cell, &hot_task.cfg)
            .as_str()
            .to_owned();
        let hot = fleet.register(&RegisterRequest {
            name: "hot".to_owned(),
            slots: 1,
            cache_keys: vec![key],
        });
        fleet.open_batch(
            vec![task_way(0, 2), task_way(1, 2), task_way(2, 2), hot_task],
            None,
            None,
        );
        // With one slot, dispatch order would hand the hot worker the
        // first way-2 cell; affinity steers its cached cell to it
        // instead, even though it was queued last.
        let lease = fleet
            .lease(
                hot.worker_id,
                &LeaseRequest {
                    max_cells: 1,
                    wait_ms: 0,
                },
            )
            .expect("known worker")
            .lease
            .expect("work available");
        assert_eq!(lease.cells.len(), 1);
        assert_eq!(lease.cells[0].cell.way, 4);
        let affine = |fleet: &Fleet| fleet.metrics.fleet_leases_affinity.load(Ordering::Relaxed);
        assert_eq!(affine(&fleet), 1);

        // A keyless worker falls through to plain dispatch order.
        let cold = fleet.register(&RegisterRequest::default());
        let lease = fleet
            .lease(
                cold.worker_id,
                &LeaseRequest {
                    max_cells: 8,
                    wait_ms: 0,
                },
            )
            .expect("known worker")
            .lease
            .expect("work available");
        assert_eq!(lease.cells.len(), 3);
        assert!(lease.cells.iter().all(|c| c.cell.way == 2));
        assert_eq!(affine(&fleet), 1, "no affinity credit without keys");

        // Accepted reports teach the coordinator what the cold worker
        // now caches, so a re-queued duplicate routes back to it.
        let results: Vec<UnitResult> = lease
            .cells
            .iter()
            .map(|c| UnitResult {
                unit: c.unit,
                cached: false,
                wall_ms: 1.0,
                stats: Some(fake_stats()),
                error: None,
                phases: None,
            })
            .collect();
        fleet
            .report(
                cold.worker_id,
                &ReportRequest {
                    lease_id: lease.lease_id,
                    results,
                    spans: Vec::new(),
                },
            )
            .expect("known worker");
        fleet.open_batch(vec![task_way(0, 2)], None, None);
        let lease = fleet
            .lease(
                cold.worker_id,
                &LeaseRequest {
                    max_cells: 8,
                    wait_ms: 0,
                },
            )
            .expect("known worker")
            .lease
            .expect("work available");
        assert_eq!(lease.cells.len(), 1);
        assert_eq!(affine(&fleet), 2, "learned keys earn affinity credit");
    }

    #[test]
    fn expired_leases_requeue_and_late_reports_go_stale() {
        let fleet = fast_fleet(10_000, 30);
        let reg = fleet.register(&RegisterRequest::default());
        let _batch = fleet.open_batch(vec![task(0)], None, None);
        let lease = fleet
            .lease(reg.worker_id, &LeaseRequest::default())
            .expect("known worker")
            .lease
            .expect("work");
        assert_eq!(fleet.pending_cells(), 0);
        std::thread::sleep(Duration::from_millis(60));
        // Any fleet call sweeps; the expired lease's cell is back.
        assert_eq!(fleet.pending_cells(), 1);

        // The slow worker reports after expiry: the unit is still open
        // (nobody re-leased it), so the result is accepted — work is
        // never thrown away, only re-offered.
        let resp = fleet
            .report(
                reg.worker_id,
                &ReportRequest {
                    lease_id: lease.lease_id,
                    results: vec![UnitResult {
                        unit: lease.cells[0].unit,
                        cached: false,
                        wall_ms: 1.0,
                        stats: Some(fake_stats()),
                        error: None,
                        phases: None,
                    }],
                    spans: Vec::new(),
                },
            )
            .expect("worker still live");
        assert_eq!((resp.accepted, resp.stale), (1, 0));
        assert_eq!(fleet.pending_cells(), 0, "accepted unit left the queue");
    }

    #[test]
    fn dead_workers_are_evicted_and_their_cells_requeued() {
        let fleet = fast_fleet(10, 60_000);
        let reg = fleet.register(&RegisterRequest::default());
        let _batch = fleet.open_batch(vec![task(0), task(1)], None, None);
        let lease = fleet
            .lease(
                reg.worker_id,
                &LeaseRequest {
                    max_cells: 2,
                    wait_ms: 0,
                },
            )
            .expect("known worker")
            .lease
            .expect("work");
        assert_eq!(lease.cells.len(), 2);

        // Miss 3 heartbeat intervals.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(fleet.live_workers(), 0, "silent worker evicted");
        assert_eq!(fleet.pending_cells(), 2, "its lease re-queued");
        let err = fleet.heartbeat(reg.worker_id).expect_err("evicted");
        assert_eq!(err.code, ErrorCode::UnknownWorker);
        let err = fleet
            .lease(reg.worker_id, &LeaseRequest::default())
            .expect_err("evicted");
        assert_eq!(err.code, ErrorCode::UnknownWorker);
    }

    #[test]
    fn executor_falls_back_to_local_when_no_worker_is_live() {
        let fleet = Arc::new(fast_fleet(10_000, 60_000));
        let exec = FleetExecutor::new(Arc::clone(&fleet), Some(2));
        let calls = AtomicUsize::new(0);
        exec.execute(vec![task(0), task(1)], None, &|out| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(out.stats.is_ok());
        });
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(fleet.pending_cells(), 0);
    }

    #[test]
    fn executor_resolves_batches_through_a_worker_thread() {
        let fleet = Arc::new(fast_fleet(10_000, 60_000));
        let reg = fleet.register(&RegisterRequest {
            name: "sim".to_owned(),
            slots: 2,
            cache_keys: Vec::new(),
        });
        // A worker loop speaking the fleet API directly: lease, simulate
        // for real, report per cell — the HTTP worker does exactly this.
        let worker_fleet = Arc::clone(&fleet);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                let resp = worker_fleet
                    .lease(
                        reg.worker_id,
                        &LeaseRequest {
                            max_cells: 2,
                            wait_ms: 50,
                        },
                    )
                    .expect("registered");
                let Some(lease) = resp.lease else { continue };
                for c in &lease.cells {
                    let run = execute_cell(&c.cell);
                    let _ = worker_fleet.report(
                        reg.worker_id,
                        &ReportRequest {
                            lease_id: lease.lease_id,
                            results: vec![UnitResult {
                                unit: c.unit,
                                cached: false,
                                wall_ms: run.wall.as_secs_f64() * 1e3,
                                stats: run.stats.as_ref().ok().cloned(),
                                error: run.stats.as_ref().err().map(|e| e.message.clone()),
                                phases: Some(run.phases),
                            }],
                            spans: Vec::new(),
                        },
                    );
                }
            }
        });

        let exec = FleetExecutor::new(Arc::clone(&fleet), Some(1));
        let calls = AtomicUsize::new(0);
        exec.execute(vec![task(0), task(1), task(2)], None, &|out| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(out.stats.is_ok(), "{:?}", out.stats);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        stop.store(true, Ordering::Relaxed);
        worker.join().expect("worker thread");
        assert_eq!(fleet.status().workers[0].completed, 3);
    }
}
