//! The bounded asynchronous job queue between the HTTP layer and the
//! sweep engine: the **bookkeeping half** of job handling.
//!
//! A `POST /v1/sweeps` allocates a [`Job`], pushes it onto a bounded FIFO
//! and returns immediately with the job id; the **execution half** lives
//! in [`crate::exec`], whose worker threads drain the queue and drive each
//! job through the engine (in-process, or sharded across the worker fleet
//! of [`crate::fleet`]) so status polls see live per-cell progress and the
//! `?since=` cursor can stream cells while the job runs.
//!
//! Beyond the FIFO, the registry implements the v1 contract's job
//! semantics:
//!
//! * **coalescing** — an identical submission (same scenario document,
//!   same filter) arriving while a matching job is queued or running is
//!   not run again: it gets its own id aliased onto the shared job, so
//!   both ids observe one engine run;
//! * **cancellation** — queued jobs drop immediately; running jobs stop
//!   cooperatively between cells via the cancel flag threaded through the
//!   engine;
//! * **retention** — finished jobs stay addressable until evicted by the
//!   configurable count cap or TTL of [`RetentionPolicy`].

use simdsim_api::{
    CellResult, CellsPage, JobState, JobSummary, Progress, SweepResult, SweepStatus,
};
use simdsim_sweep::{fnv1a128, CpiStack, ProgressEvent, Scenario};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long finished jobs stay addressable in the registry.
#[derive(Debug, Clone, Copy)]
pub struct RetentionPolicy {
    /// Maximum retained finished jobs; the oldest are evicted first once
    /// the registry grows past this.
    pub max_finished: usize,
    /// Optional age limit: finished jobs older than this are evicted on
    /// the next submission regardless of the count cap.
    pub ttl: Option<Duration>,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        Self {
            max_finished: 4096,
            ttl: None,
        }
    }
}

#[derive(Debug)]
struct JobInner {
    state: JobState,
    progress: Progress,
    /// Cells in completion order, appended as the engine resolves them —
    /// the backing array of the `?since=` cursor stream.
    cells: Vec<CellResult>,
    result: Option<SweepResult>,
    finished_at: Option<Instant>,
    /// Merged cycle-accounting stack over every profiled ok cell
    /// published so far — the aggregate behind
    /// `GET /v1/sweeps/{id}/profile`, maintained incrementally so a
    /// running job serves a partial aggregate without replaying cells.
    profile: CpiStack,
    /// Cells whose stacks contributed to `profile`.
    profile_cells: u64,
    /// Cells that resolved ok but carried no stack (profiling off, or
    /// results cached by a pre-profiler build).
    profile_missing: u64,
}

/// One submitted sweep, shared between the HTTP layer (status polls,
/// cell streams) and the worker running it.
#[derive(Debug)]
pub struct Job {
    /// The job's primary id, assigned at submission.  Deduplicated
    /// submissions get their own ids aliased onto the same `Job`.
    pub id: u64,
    /// The scenario to run.
    pub scenario: Scenario,
    /// Optional label filter.
    pub filter: Option<String>,
    /// The trace id this job's lifecycle events are recorded under
    /// (client-provided via `X-Simdsim-Trace-Id` or server-generated at
    /// submission).  Coalesced submissions observe the original job's
    /// trace.
    pub trace: Option<String>,
    /// Cooperative cancellation flag, shared with the engine run.
    pub cancel: Arc<AtomicBool>,
    /// Fingerprint of (scenario, filter) used for coalescing.
    coalesce_key: u128,
    inner: Mutex<JobInner>,
    /// Notified whenever a cell resolves or the job reaches a terminal
    /// state — what the `?since=` long-poll waits on.
    cells_cv: Condvar,
}

impl Job {
    /// The job's current state.
    #[must_use]
    pub fn state(&self) -> JobState {
        self.inner.lock().expect("job lock").state
    }

    /// The job's live progress counters.
    #[must_use]
    pub fn progress(&self) -> Progress {
        self.inner.lock().expect("job lock").progress
    }

    /// The finished job's result (`None` until terminal; stays `None`
    /// for jobs cancelled while queued).
    #[must_use]
    pub fn result(&self) -> Option<SweepResult> {
        self.inner.lock().expect("job lock").result.clone()
    }

    /// The full status document, reported under `requested_id` (an alias
    /// id observes the shared run under its own id).
    #[must_use]
    pub fn status(&self, requested_id: u64) -> SweepStatus {
        let inner = self.inner.lock().expect("job lock");
        SweepStatus {
            id: requested_id,
            scenario: self.scenario.name.clone(),
            filter: self.filter.clone(),
            state: inner.state,
            progress: inner.progress,
            result: inner.result.clone(),
        }
    }

    /// The listing row, reported under `requested_id`.
    #[must_use]
    pub fn summary(&self, requested_id: u64) -> JobSummary {
        let inner = self.inner.lock().expect("job lock");
        JobSummary {
            id: requested_id,
            scenario: self.scenario.name.clone(),
            filter: self.filter.clone(),
            state: inner.state,
            progress: inner.progress,
        }
    }

    /// One page of the per-cell stream: the cells resolved after cursor
    /// `since`, in completion order.  When no such cell exists yet and
    /// the job is still live, blocks up to `wait` for one (long-poll).
    /// A cursor beyond the end of the stream yields an empty page.
    #[must_use]
    pub fn cells_page(&self, requested_id: u64, since: u64, wait: Duration) -> CellsPage {
        let mut inner = self.inner.lock().expect("job lock");
        let deadline = Instant::now() + wait;
        while (inner.cells.len() as u64) <= since && !inner.state.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .cells_cv
                .wait_timeout(inner, deadline - now)
                .expect("job lock");
            inner = guard;
        }
        let len = inner.cells.len();
        let start = usize::try_from(since).map_or(len, |s| s.min(len));
        let cells: Vec<CellResult> = inner.cells[start..].to_vec();
        let next = since.max(len as u64);
        CellsPage {
            id: requested_id,
            state: inner.state,
            since,
            next,
            total: inner.progress.total,
            done: inner.state.is_terminal() && next >= len as u64,
            cells,
        }
    }

    /// The job's aggregated CPI stack so far as
    /// `(stack, contributing_cells, missing_cells)`.  The stack is `None`
    /// until at least one profiled cell resolves, so a poll on a fresh
    /// job reads "no data yet" rather than an all-zero aggregate.
    #[must_use]
    pub fn profile_aggregate(&self) -> (Option<CpiStack>, u64, u64) {
        let inner = self.inner.lock().expect("job lock");
        let stack = (inner.profile_cells > 0).then_some(inner.profile);
        (stack, inner.profile_cells, inner.profile_missing)
    }

    pub(crate) fn finished(&self) -> bool {
        self.state().is_terminal()
    }

    /// Age of the job's terminal state, `None` while live.
    fn finished_age(&self) -> Option<Duration> {
        self.inner
            .lock()
            .expect("job lock")
            .finished_at
            .map(|t| t.elapsed())
    }

    /// Attempts the queued→running transition for the executor.
    pub(crate) fn start(&self) -> StartOutcome {
        let mut inner = self.inner.lock().expect("job lock");
        if inner.state == JobState::Cancelled {
            return StartOutcome::AlreadyTerminal;
        }
        if self.cancel.load(Ordering::Relaxed) {
            // Cancelled after being popped but before starting: finish
            // the transition the canceller could not (see `cancel`).
            inner.state = JobState::Cancelled;
            inner.finished_at = Some(Instant::now());
            drop(inner);
            self.cells_cv.notify_all();
            return StartOutcome::CancelledNow;
        }
        inner.state = JobState::Running;
        StartOutcome::Started
    }

    /// Publishes one engine progress event: updates the counters and
    /// appends to the `?since=` cell stream.
    pub(crate) fn publish_cell(&self, ev: &ProgressEvent) {
        let cell = CellResult::from_progress(ev);
        let mut inner = self.inner.lock().expect("job lock");
        match ev.stats.as_ref().map(|s| s.profile.as_ref()) {
            Some(Some(stack)) => {
                inner.profile.merge(stack);
                inner.profile_cells += 1;
            }
            Some(None) => inner.profile_missing += 1,
            None => {} // failed cell: neither contributes nor is "missing"
        }
        inner.progress.total = ev.total as u64;
        // Events from concurrent engine workers can arrive out of counter
        // order; keep the published count monotonic for pollers.
        inner.progress.completed = inner.progress.completed.max(ev.completed as u64);
        if ev.cached {
            inner.progress.cached += 1;
        }
        inner.cells.push(cell);
        drop(inner);
        self.cells_cv.notify_all();
    }

    /// Moves the job to its terminal state with its result, waking every
    /// streamer.  `total` is the authoritative cell count (a zero-cell
    /// sweep never fires a progress event, so progress mirrors it here).
    pub(crate) fn finish(&self, state: JobState, total: u64, result: SweepResult) {
        let mut inner = self.inner.lock().expect("job lock");
        inner.state = state;
        inner.progress.total = total;
        inner.progress.completed = total;
        inner.result = Some(result);
        inner.finished_at = Some(Instant::now());
        drop(inner);
        self.cells_cv.notify_all();
    }
}

/// What [`Job::start`] achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StartOutcome {
    /// The job is now running.
    Started,
    /// The job was cancelled between pop and start; this call performed
    /// the terminal transition (the caller owns the metrics tally).
    CancelledNow,
    /// The job was already terminal; nothing to do.
    AlreadyTerminal,
}

/// Fingerprints a submission for coalescing: the full scenario document
/// plus the filter, hashed with the same stable FNV the result store uses.
fn coalesce_key(scenario: &Scenario, filter: Option<&str>) -> u128 {
    let doc =
        serde_json::to_string(&(scenario, filter.map(str::to_owned))).expect("scenario serializes");
    fnv1a128(doc.as_bytes())
}

/// One registered submission id.  Alias ids of coalesced submissions
/// hold the same `Arc<Job>`; cancellation is tracked **per id**, so one
/// submitter bowing out never kills the run other ids still observe.
#[derive(Debug)]
struct Registered {
    job: Arc<Job>,
    /// This id was individually cancelled (detached).  The shared engine
    /// run stops only when its *last* live id cancels.
    cancelled: bool,
}

#[derive(Debug, Default)]
struct QueueState {
    next_id: u64,
    queue: VecDeque<Arc<Job>>,
    /// Every live id; alias ids of coalesced submissions map to the same
    /// `Arc<Job>`.  `BTreeMap` so eviction scans oldest-first.
    jobs: BTreeMap<u64, Registered>,
}

/// The submission was rejected because the queue is at capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured queue capacity.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue full ({} queued)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// An accepted submission: the id to report, the job backing it, and
/// whether the submission was coalesced onto an existing run.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The id this submission observes the job under.
    pub id: u64,
    /// The backing job (shared when `deduped`).
    pub job: Arc<Job>,
    /// `true` when no new engine run was queued.
    pub deduped: bool,
}

/// What a cancellation request achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and is now terminally cancelled.
    Cancelled,
    /// The job is running; the flag is set and the run will stop
    /// cooperatively between cells.
    Cancelling,
    /// The job already reached the contained terminal state.
    AlreadyFinished(JobState),
}

/// The bounded job queue plus the registry of live jobs.
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    retention: RetentionPolicy,
    state: Mutex<QueueState>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` queued jobs, with the
    /// default retention policy.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_retention(capacity, RetentionPolicy::default())
    }

    /// An empty queue with an explicit retention policy.
    #[must_use]
    pub fn with_retention(capacity: usize, retention: RetentionPolicy) -> Self {
        Self {
            capacity: capacity.max(1),
            retention: RetentionPolicy {
                max_finished: retention.max_finished.max(1),
                ttl: retention.ttl,
            },
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued (not yet running) jobs.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").queue.len()
    }

    /// Enqueues a sweep and returns its submission, coalescing onto an
    /// identical queued/running job when one exists (the engine is
    /// deterministic and results are content-addressed, so the shared
    /// run's outcome is exactly what a second run would produce).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when `capacity` jobs are already queued.
    pub fn submit(
        &self,
        scenario: Scenario,
        filter: Option<String>,
        trace: Option<String>,
    ) -> Result<Submission, QueueFull> {
        let key = coalesce_key(&scenario, filter.as_deref());
        let mut st = self.state.lock().expect("queue lock");

        // Coalesce: an identical submission rides an in-flight job.  The
        // key compare comes first so the per-job state lock is only taken
        // for actual fingerprint matches.
        let shared = st.jobs.values().find(|r| {
            r.job.coalesce_key == key
                && !r.job.cancel.load(Ordering::Relaxed)
                && matches!(r.job.state(), JobState::Queued | JobState::Running)
        });
        if let Some(job) = shared.map(|r| Arc::clone(&r.job)) {
            st.next_id += 1;
            let id = st.next_id;
            st.jobs.insert(
                id,
                Registered {
                    job: Arc::clone(&job),
                    cancelled: false,
                },
            );
            return Ok(Submission {
                id,
                job,
                deduped: true,
            });
        }

        if st.queue.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        st.next_id += 1;
        let job = Arc::new(Job {
            id: st.next_id,
            scenario,
            filter,
            trace,
            cancel: Arc::new(AtomicBool::new(false)),
            coalesce_key: key,
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                progress: Progress::default(),
                cells: Vec::new(),
                result: None,
                finished_at: None,
                profile: CpiStack::default(),
                profile_cells: 0,
                profile_missing: 0,
            }),
            cells_cv: Condvar::new(),
        });
        st.queue.push_back(Arc::clone(&job));
        st.jobs.insert(
            job.id,
            Registered {
                job: Arc::clone(&job),
                cancelled: false,
            },
        );
        self.evict_locked(&mut st);
        drop(st);
        self.available.notify_one();
        Ok(Submission {
            id: job.id,
            deduped: false,
            job,
        })
    }

    /// Applies the retention policy in one pass per rule: TTL first, then
    /// the count cap (oldest evictable ids first).  An id is evictable
    /// once its submission is over — the job reached a terminal state or
    /// the id was individually cancelled — so a live submission can
    /// always be polled.
    fn evict_locked(&self, st: &mut QueueState) {
        if let Some(ttl) = self.retention.ttl {
            st.jobs
                .retain(|_, r| r.job.finished_age().is_none_or(|age| age <= ttl));
        }
        let evictable: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, r)| r.cancelled || r.job.finished())
            .map(|(&id, _)| id)
            .collect();
        if evictable.len() > self.retention.max_finished {
            for id in &evictable[..evictable.len() - self.retention.max_finished] {
                st.jobs.remove(id);
            }
        }
    }

    /// Looks a job up by id (queued, running or finished-and-retained),
    /// including alias ids of coalesced submissions.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.lookup(id).map(|(job, _)| job)
    }

    /// Like [`JobQueue::get`], also reporting whether this particular id
    /// was individually cancelled (a detached coalesced submission).
    #[must_use]
    pub fn lookup(&self, id: u64) -> Option<(Arc<Job>, bool)> {
        self.state
            .lock()
            .expect("queue lock")
            .jobs
            .get(&id)
            .map(|r| (Arc::clone(&r.job), r.cancelled))
    }

    /// The status document for `id`, with the per-id cancellation
    /// override applied: a detached submission reports `cancelled` with
    /// no result, whatever the shared run went on to do.
    #[must_use]
    pub fn status_for(&self, id: u64) -> Option<SweepStatus> {
        let (job, cancelled) = self.lookup(id)?;
        let mut status = job.status(id);
        if cancelled {
            status.state = JobState::Cancelled;
            status.result = None;
        }
        Some(status)
    }

    /// Every known `(id, job, id_cancelled)` triple, newest id first.
    #[must_use]
    pub fn list(&self) -> Vec<(u64, Arc<Job>, bool)> {
        self.state
            .lock()
            .expect("queue lock")
            .jobs
            .iter()
            .rev()
            .map(|(&id, r)| (id, Arc::clone(&r.job), r.cancelled))
            .collect()
    }

    /// Cancels submission `id`.  Cancellation is per id: a coalesced
    /// submission detaches without disturbing the ids still observing the
    /// shared run, and the run itself stops only when its **last** live
    /// id cancels — queued jobs then leave the queue immediately, running
    /// jobs stop cooperatively between cells.
    ///
    /// Returns `None` for unknown ids.
    #[must_use]
    pub fn cancel(&self, id: u64) -> Option<(Arc<Job>, CancelOutcome)> {
        let mut st = self.state.lock().expect("queue lock");
        let entry = st.jobs.get(&id)?;
        if entry.cancelled {
            let job = Arc::clone(&entry.job);
            return Some((job, CancelOutcome::AlreadyFinished(JobState::Cancelled)));
        }
        let job = Arc::clone(&entry.job);
        let state = job.state();
        if state.is_terminal() {
            return Some((job, CancelOutcome::AlreadyFinished(state)));
        }
        let others_live = st
            .jobs
            .iter()
            .any(|(&other, r)| other != id && !r.cancelled && Arc::ptr_eq(&r.job, &job));
        if others_live {
            // Other submissions still observe the run: detach this id
            // only.  (Its status now reads `cancelled` via `status_for`.)
            st.jobs.get_mut(&id).expect("entry present").cancelled = true;
            drop(st);
            return Some((job, CancelOutcome::Cancelled));
        }

        // Last live observer: stop the run itself.  The job's own state
        // carries the cancellation from here, so the id entry stays
        // undetached and keeps reporting the run's (partial) result.
        let mut inner = job.inner.lock().expect("job lock");
        let outcome = match inner.state {
            JobState::Queued => {
                job.cancel.store(true, Ordering::Relaxed);
                // The worker may have popped the job already without
                // having marked it running; the flag covers that race
                // (run_job checks it before starting the engine).
                st.queue.retain(|j| j.id != job.id);
                inner.state = JobState::Cancelled;
                inner.finished_at = Some(Instant::now());
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::Relaxed);
                CancelOutcome::Cancelling
            }
            state => CancelOutcome::AlreadyFinished(state),
        };
        drop(inner);
        job.cells_cv.notify_all();
        drop(st);
        Some((job, outcome))
    }

    /// Blocks until a job is available or the queue shuts down (`None`).
    #[must_use]
    pub fn pop_blocking(&self) -> Option<Arc<Job>> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some(job) = st.queue.pop_front() {
                // A job cancelled between enqueue and pop is already
                // terminal; skip it rather than waking the engine.
                if job.state() == JobState::Cancelled {
                    continue;
                }
                return Some(job);
            }
            st = self.available.wait(st).expect("queue lock");
        }
    }

    /// Wakes every blocked worker and makes further pops return `None`.
    pub fn shut_down(&self) {
        // Flag and notify under the state lock: a worker between its
        // shutdown check and its `wait` would otherwise miss this
        // notification and sleep forever (the classic lost wake-up).
        let _guard = self.state.lock().expect("queue lock");
        self.shutdown.store(true, Ordering::Release);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_job, spawn_workers, ExecContext};
    use simdsim_sweep::Scenario;

    fn tiny_scenario() -> Scenario {
        // No exts/ways axes → zero cells, so queue tests never simulate.
        Scenario::new("t", "queue test").kernels(["idct"])
    }

    /// Distinctly-named zero-cell scenarios (dodges coalescing).
    fn distinct_scenario(tag: &str) -> Scenario {
        Scenario::new(tag, "queue test").kernels(["idct"])
    }

    #[test]
    fn capacity_is_enforced_and_ids_are_monotonic() {
        let q = JobQueue::new(2);
        let a = q.submit(distinct_scenario("a"), None, None).expect("fits");
        let b = q.submit(distinct_scenario("b"), None, None).expect("fits");
        assert!(b.id > a.id);
        let err = q
            .submit(distinct_scenario("c"), None, None)
            .expect_err("full");
        assert_eq!(err.capacity, 2);
        assert_eq!(q.depth(), 2);
        // Draining makes room again.
        assert_eq!(q.pop_blocking().expect("job").id, a.id);
        q.submit(distinct_scenario("d"), None, None)
            .expect("fits after pop");
    }

    #[test]
    fn identical_queued_submissions_coalesce_onto_one_job() {
        let q = JobQueue::new(8);
        let first = q.submit(tiny_scenario(), None, None).expect("fits");
        assert!(!first.deduped);
        let dup = q.submit(tiny_scenario(), None, None).expect("fits");
        assert!(dup.deduped);
        assert!(dup.id > first.id);
        assert!(Arc::ptr_eq(&dup.job, &first.job));
        // One engine run queued, both ids resolvable.
        assert_eq!(q.depth(), 1);
        assert!(q.get(first.id).is_some());
        assert!(q.get(dup.id).is_some());

        // A different filter is a different submission.
        let other = q
            .submit(tiny_scenario(), Some("/idct/".to_owned()), None)
            .expect("fits");
        assert!(!other.deduped);

        // Once the job finishes, identical submissions queue a fresh run.
        run_job(&q.pop_blocking().expect("job"), &ExecContext::default());
        let fresh = q.submit(tiny_scenario(), None, None).expect("fits");
        assert!(!fresh.deduped);
    }

    #[test]
    fn jobs_stay_addressable_after_finishing() {
        let q = JobQueue::new(8);
        let sub = q.submit(tiny_scenario(), None, None).expect("fits");
        let popped = q.pop_blocking().expect("job");
        run_job(&popped, &ExecContext::default());
        let fetched = q.get(sub.id).expect("retained");
        assert_eq!(fetched.state(), JobState::Done);
        let result = fetched.result().expect("has result");
        assert_eq!(result.cells.len(), 0); // no exts/ways axes → no cells
        assert!(q.get(sub.id + 1000).is_none());
    }

    #[test]
    fn retention_cap_evicts_oldest_finished_jobs() {
        let q = JobQueue::with_retention(
            8,
            RetentionPolicy {
                max_finished: 2,
                ttl: None,
            },
        );
        let ctx = ExecContext::default();
        let mut ids = Vec::new();
        for tag in ["a", "b", "c", "d"] {
            let sub = q.submit(distinct_scenario(tag), None, None).expect("fits");
            ids.push(sub.id);
            run_job(&q.pop_blocking().expect("job"), &ctx);
        }
        // The eviction runs on submit; push one more to trigger it.
        let live = q.submit(distinct_scenario("e"), None, None).expect("fits");
        assert!(q.get(ids[0]).is_none(), "oldest finished job evicted");
        assert!(q.get(ids[1]).is_none(), "second-oldest evicted");
        assert!(q.get(ids[2]).is_some());
        assert!(q.get(ids[3]).is_some());
        assert!(q.get(live.id).is_some(), "live jobs are never evicted");
    }

    #[test]
    fn retention_ttl_evicts_expired_jobs() {
        let q = JobQueue::with_retention(
            8,
            RetentionPolicy {
                max_finished: 100,
                ttl: Some(Duration::ZERO),
            },
        );
        let sub = q
            .submit(distinct_scenario("old"), None, None)
            .expect("fits");
        run_job(&q.pop_blocking().expect("job"), &ExecContext::default());
        std::thread::sleep(Duration::from_millis(5));
        let _ = q
            .submit(distinct_scenario("new"), None, None)
            .expect("fits");
        assert!(q.get(sub.id).is_none(), "expired job evicted");
    }

    #[test]
    fn cancelling_a_queued_job_drops_it_before_it_runs() {
        let q = JobQueue::new(8);
        let sub = q.submit(distinct_scenario("x"), None, None).expect("fits");
        let (job, outcome) = q.cancel(sub.id).expect("known id");
        assert_eq!(outcome, CancelOutcome::Cancelled);
        assert_eq!(job.state(), JobState::Cancelled);
        assert_eq!(q.depth(), 0, "cancelled job left the queue");
        assert!(job.result().is_none(), "never ran, no result");

        // Cancelling again is a conflict.
        let (_, outcome) = q.cancel(sub.id).expect("still addressable");
        assert_eq!(outcome, CancelOutcome::AlreadyFinished(JobState::Cancelled));
        assert!(q.cancel(sub.id + 99).is_none(), "unknown id");
    }

    #[test]
    fn cancelling_an_alias_detaches_without_stopping_the_shared_run() {
        let q = JobQueue::new(8);
        let first = q.submit(tiny_scenario(), None, None).expect("fits");
        let dup = q.submit(tiny_scenario(), None, None).expect("fits");
        assert!(dup.deduped);

        // The duplicate bows out: its id reads cancelled, the shared run
        // is untouched and still queued for the first submitter.
        let (_, outcome) = q.cancel(dup.id).expect("known id");
        assert_eq!(outcome, CancelOutcome::Cancelled);
        assert_eq!(
            q.status_for(dup.id).expect("alias status").state,
            JobState::Cancelled
        );
        assert!(!first.job.cancel.load(Ordering::Relaxed));
        assert_eq!(first.job.state(), JobState::Queued);
        assert_eq!(q.depth(), 1);

        // Cancelling the detached id again is a conflict.
        let (_, outcome) = q.cancel(dup.id).expect("still addressable");
        assert_eq!(outcome, CancelOutcome::AlreadyFinished(JobState::Cancelled));

        // The run still completes for the first submitter...
        run_job(&q.pop_blocking().expect("job"), &ExecContext::default());
        assert_eq!(
            q.status_for(first.id).expect("status").state,
            JobState::Done
        );
        // ...and the detached id stays terminally cancelled, result-free.
        let alias = q.status_for(dup.id).expect("alias status");
        assert_eq!(alias.state, JobState::Cancelled);
        assert!(alias.result.is_none());

        // Cancelling the last live id stops the run itself.
        let solo = q
            .submit(distinct_scenario("solo"), None, None)
            .expect("fits");
        let also = q
            .submit(distinct_scenario("solo"), None, None)
            .expect("fits");
        assert!(also.deduped);
        let (_, outcome) = q.cancel(solo.id).expect("detach first");
        assert_eq!(outcome, CancelOutcome::Cancelled);
        assert_eq!(solo.job.state(), JobState::Queued, "one observer left");
        let (_, outcome) = q.cancel(also.id).expect("last observer");
        assert_eq!(outcome, CancelOutcome::Cancelled);
        assert_eq!(solo.job.state(), JobState::Cancelled, "run stopped");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn shutdown_unblocks_workers() {
        let q = Arc::new(JobQueue::new(4));
        let handles = spawn_workers(2, &q, &ExecContext::default());
        q.shut_down();
        for h in handles {
            h.join().expect("worker exits");
        }
    }

    #[test]
    fn run_job_reports_per_cell_failures() {
        let scenario = Scenario::new("bad", "unknown kernel")
            .kernels(["no-such-kernel"])
            .exts([simdsim_isa::Ext::Mmx64])
            .ways([2]);
        let q = JobQueue::new(1);
        let sub = q.submit(scenario, None, None).expect("fits");
        let ctx = ExecContext::default();
        run_job(&q.pop_blocking().expect("job"), &ctx);
        assert_eq!(sub.job.state(), JobState::Failed);
        let result = sub.job.result().expect("result");
        assert_eq!(result.failed, 1);
        assert!(result.cells[0]
            .error
            .as_deref()
            .expect("error")
            .contains("no-such-kernel"));
        assert_eq!(ctx.metrics.jobs_failed.load(Ordering::Relaxed), 1);
        // The failed cell also streamed through the cursor.
        let page = sub.job.cells_page(sub.id, 0, Duration::ZERO);
        assert_eq!(page.cells.len(), 1);
        assert!(page.done);
        assert_eq!(page.next, 1);
    }

    #[test]
    fn cells_page_beyond_the_end_is_empty_not_an_error() {
        let q = JobQueue::new(1);
        let sub = q.submit(tiny_scenario(), None, None).expect("fits");
        run_job(&q.pop_blocking().expect("job"), &ExecContext::default());
        let page = sub.job.cells_page(sub.id, 999, Duration::ZERO);
        assert!(page.cells.is_empty());
        assert_eq!(page.since, 999);
        assert_eq!(page.next, 999);
        assert!(page.done);
    }
}
