//! The bounded asynchronous job queue between the HTTP layer and the
//! sweep engine.
//!
//! A `POST /sweeps` allocates a [`Job`], pushes it onto a bounded FIFO and
//! returns immediately with the job id; a fixed pool of worker threads
//! drains the queue, running each job through
//! [`simdsim_sweep::run_with_progress`] so status polls see live per-cell
//! progress.  Finished jobs stay addressable (bounded retention) so
//! clients can fetch results after completion.

use crate::metrics::Metrics;
use serde::Serialize;
use simdsim_sweep::{run_with_progress, CellStats, EngineOptions, Scenario, SweepReport};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Maximum finished jobs retained for status polls; the oldest finished
/// jobs are evicted first once the registry grows past this.
const JOB_RETENTION: usize = 4096;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobState {
    /// Waiting on the queue.
    Queued,
    /// Picked up by a worker, cells resolving.
    Running,
    /// Every cell resolved successfully (from cache or simulation).
    Done,
    /// At least one cell failed.
    Failed,
}

impl JobState {
    /// Lower-case wire name of the state.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Live cell counters of a running job.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct JobProgress {
    /// Cells in the (filtered) sweep.
    pub total: usize,
    /// Cells resolved so far.
    pub completed: usize,
    /// Of those, cells served from the store.
    pub cached: usize,
}

/// One resolved cell in a finished job's result.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// The cell's display label.
    pub label: String,
    /// `true` when the result came from the content-addressed store.
    pub cached: bool,
    /// Simulation throughput in MIPS (`null` for cached/failed cells).
    pub mips: Option<f64>,
    /// The timing statistics (`null` when the cell failed).
    pub stats: Option<CellStats>,
    /// The failure message (`null` when the cell succeeded).
    pub error: Option<String>,
}

/// The result of one finished job.
#[derive(Debug, Clone, Serialize)]
pub struct JobResult {
    /// Per-cell outcomes in deterministic expansion order.
    pub cells: Vec<CellResult>,
    /// Cells served from the store.
    pub cached: usize,
    /// Cells simulated in this job.
    pub executed: usize,
    /// Cells that failed.
    pub failed: usize,
    /// Wall-clock milliseconds spent simulating.
    pub simulated_wall_ms: f64,
    /// Aggregate simulation throughput in MIPS (`null` if all cached).
    pub simulated_mips: Option<f64>,
}

impl JobResult {
    fn from_report(report: &SweepReport) -> Self {
        Self {
            cells: report
                .outcomes
                .iter()
                .map(|o| CellResult {
                    label: o.cell.label(),
                    cached: o.cached,
                    mips: o.mips(),
                    stats: o.stats.as_ref().ok().cloned(),
                    error: o.stats.as_ref().err().map(|e| e.message.clone()),
                })
                .collect(),
            cached: report.cached(),
            executed: report.executed(),
            failed: report.failed(),
            simulated_wall_ms: report.simulated_wall().as_secs_f64() * 1.0e3,
            simulated_mips: report.simulated_mips(),
        }
    }
}

#[derive(Debug)]
struct JobInner {
    state: JobState,
    progress: JobProgress,
    result: Option<JobResult>,
}

/// One submitted sweep, shared between the HTTP layer (status polls) and
/// the worker running it.
#[derive(Debug)]
pub struct Job {
    /// Monotonic job id, assigned at submission.
    pub id: u64,
    /// The scenario to run.
    pub scenario: Scenario,
    /// Optional label filter.
    pub filter: Option<String>,
    inner: Mutex<JobInner>,
}

impl Job {
    /// The job's current state.
    #[must_use]
    pub fn state(&self) -> JobState {
        self.inner.lock().expect("job lock").state
    }

    /// The job's live progress counters.
    #[must_use]
    pub fn progress(&self) -> JobProgress {
        self.inner.lock().expect("job lock").progress
    }

    /// The finished job's result (`None` until done/failed).
    #[must_use]
    pub fn result(&self) -> Option<JobResult> {
        self.inner.lock().expect("job lock").result.clone()
    }

    fn finished(&self) -> bool {
        matches!(self.state(), JobState::Done | JobState::Failed)
    }
}

#[derive(Debug, Default)]
struct QueueState {
    next_id: u64,
    queue: VecDeque<Arc<Job>>,
    /// Every live job by id; `BTreeMap` so eviction scans oldest-first.
    jobs: BTreeMap<u64, Arc<Job>>,
}

/// The submission was rejected because the queue is at capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured queue capacity.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue full ({} queued)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// The bounded job queue plus the registry of live jobs.
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` queued jobs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued (not yet running) jobs.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").queue.len()
    }

    /// Enqueues a sweep and returns its job handle.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when `capacity` jobs are already queued.
    pub fn submit(
        &self,
        scenario: Scenario,
        filter: Option<String>,
    ) -> Result<Arc<Job>, QueueFull> {
        let mut st = self.state.lock().expect("queue lock");
        if st.queue.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        st.next_id += 1;
        let job = Arc::new(Job {
            id: st.next_id,
            scenario,
            filter,
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                progress: JobProgress::default(),
                result: None,
            }),
        });
        st.queue.push_back(Arc::clone(&job));
        st.jobs.insert(job.id, Arc::clone(&job));
        // Bounded retention: evict the oldest *finished* jobs only, so a
        // queued/running job can always be polled.
        while st.jobs.len() > JOB_RETENTION {
            let Some((&id, _)) = st.jobs.iter().find(|(_, j)| j.finished()) else {
                break;
            };
            st.jobs.remove(&id);
        }
        drop(st);
        self.available.notify_one();
        Ok(job)
    }

    /// Looks a job up by id (queued, running or finished-and-retained).
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.state
            .lock()
            .expect("queue lock")
            .jobs
            .get(&id)
            .cloned()
    }

    /// Blocks until a job is available or the queue shuts down (`None`).
    #[must_use]
    pub fn pop_blocking(&self) -> Option<Arc<Job>> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some(job) = st.queue.pop_front() {
                return Some(job);
            }
            st = self.available.wait(st).expect("queue lock");
        }
    }

    /// Wakes every blocked worker and makes further pops return `None`.
    pub fn shut_down(&self) {
        // Flag and notify under the state lock: a worker between its
        // shutdown check and its `wait` would otherwise miss this
        // notification and sleep forever (the classic lost wake-up).
        let _guard = self.state.lock().expect("queue lock");
        self.shutdown.store(true, Ordering::Release);
        self.available.notify_all();
    }
}

/// Runs one job to completion, publishing progress as cells resolve.
pub fn run_job(job: &Job, base_opts: &EngineOptions, metrics: &Metrics) {
    {
        let mut inner = job.inner.lock().expect("job lock");
        inner.state = JobState::Running;
    }
    let mut opts = base_opts.clone();
    if let Some(f) = &job.filter {
        opts = opts.filter(f.clone());
    }
    let report = run_with_progress(&job.scenario, &opts, &|ev| {
        let mut inner = job.inner.lock().expect("job lock");
        inner.progress.total = ev.total;
        // Events from concurrent engine workers can arrive out of counter
        // order; keep the published count monotonic for pollers.
        inner.progress.completed = inner.progress.completed.max(ev.completed);
        if ev.cached {
            inner.progress.cached += 1;
        }
    });

    let result = JobResult::from_report(&report);
    metrics.record_job(
        result.cached,
        result.executed,
        report
            .outcomes
            .iter()
            .filter(|o| !o.cached)
            .filter_map(|o| o.stats.as_ref().ok().map(|s| s.instrs))
            .sum(),
        report.simulated_wall(),
    );
    if result.failed > 0 {
        metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
    } else {
        metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    let mut inner = job.inner.lock().expect("job lock");
    inner.state = if result.failed > 0 {
        JobState::Failed
    } else {
        JobState::Done
    };
    // A sweep with zero matching cells never fires a progress event; the
    // result is still well-formed (empty), so mirror it into progress.
    inner.progress.total = report.outcomes.len();
    inner.progress.completed = report.outcomes.len();
    inner.result = Some(result);
}

/// Spawns `n` worker threads draining `queue` until shutdown.
#[must_use]
pub fn spawn_workers(
    n: usize,
    queue: &Arc<JobQueue>,
    opts: &EngineOptions,
    metrics: &Arc<Metrics>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let queue = Arc::clone(queue);
            let opts = opts.clone();
            let metrics = Arc::clone(metrics);
            std::thread::Builder::new()
                .name(format!("sweep-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = queue.pop_blocking() {
                        run_job(&job, &opts, &metrics);
                    }
                })
                .expect("spawn sweep worker")
        })
        .collect()
}

/// Polls `job` until it leaves the queued/running states, sleeping
/// `interval` between checks (test/CLI helper).
pub fn wait_finished(job: &Job, interval: Duration) {
    while !job.finished() {
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_sweep::Scenario;

    fn tiny_scenario() -> Scenario {
        // An invalid-way scenario resolves instantly (per-cell error), so
        // queue tests never simulate anything.
        Scenario::new("t", "queue test").kernels(["idct"])
    }

    #[test]
    fn capacity_is_enforced_and_ids_are_monotonic() {
        let q = JobQueue::new(2);
        let a = q.submit(tiny_scenario(), None).expect("fits");
        let b = q.submit(tiny_scenario(), None).expect("fits");
        assert!(b.id > a.id);
        let err = q.submit(tiny_scenario(), None).expect_err("full");
        assert_eq!(err.capacity, 2);
        assert_eq!(q.depth(), 2);
        // Draining makes room again.
        assert_eq!(q.pop_blocking().expect("job").id, a.id);
        q.submit(tiny_scenario(), None).expect("fits after pop");
    }

    #[test]
    fn jobs_stay_addressable_after_finishing() {
        let q = JobQueue::new(8);
        let job = q.submit(tiny_scenario(), None).expect("fits");
        let popped = q.pop_blocking().expect("job");
        run_job(&popped, &EngineOptions::default(), &Metrics::default());
        let fetched = q.get(job.id).expect("retained");
        assert_eq!(fetched.state(), JobState::Done);
        let result = fetched.result().expect("has result");
        assert_eq!(result.cells.len(), 0); // no exts/ways axes → no cells
        assert!(q.get(job.id + 1000).is_none());
    }

    #[test]
    fn shutdown_unblocks_workers() {
        let q = Arc::new(JobQueue::new(4));
        let handles = spawn_workers(
            2,
            &q,
            &EngineOptions::default(),
            &Arc::new(Metrics::default()),
        );
        q.shut_down();
        for h in handles {
            h.join().expect("worker exits");
        }
    }

    #[test]
    fn run_job_reports_per_cell_failures() {
        let scenario = Scenario::new("bad", "unknown kernel")
            .kernels(["no-such-kernel"])
            .exts([simdsim_isa::Ext::Mmx64])
            .ways([2]);
        let q = JobQueue::new(1);
        let job = q.submit(scenario, None).expect("fits");
        let metrics = Metrics::default();
        run_job(
            &q.pop_blocking().expect("job"),
            &EngineOptions::default(),
            &metrics,
        );
        assert_eq!(job.state(), JobState::Failed);
        let result = job.result().expect("result");
        assert_eq!(result.failed, 1);
        assert!(result.cells[0]
            .error
            .as_deref()
            .expect("error")
            .contains("no-such-kernel"));
        assert_eq!(metrics.jobs_failed.load(Ordering::Relaxed), 1);
    }
}
