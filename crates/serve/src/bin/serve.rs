//! `serve` — the simdsim sweep daemon.
//!
//! ```console
//! $ serve                                  # 127.0.0.1:8844, cache on
//! $ serve --addr 0.0.0.0:9000 --workers 4
//! $ serve --scenario-file my.json          # serve a user scenario too
//! $ serve --retention 1024 --ttl-secs 3600 # bound the finished-job registry
//! ```
//!
//! The daemon speaks the typed v1 contract: `GET /v1/scenarios`,
//! `GET|POST /v1/sweeps`, `POST /v1/sweeps:batch`, `GET /v1/sweeps/{id}`,
//! `GET /v1/sweeps/{id}/cells?since=N` (long-poll cell stream),
//! `DELETE /v1/sweeps/{id}` (cancel), `GET /v1/healthz`,
//! `GET /metrics` (Prometheus text format), the worker-fleet surface
//! (`POST /v1/workers/register`, `POST /v1/workers/{id}/heartbeat|lease|report`,
//! `GET /v1/workers`), and store snapshots (`GET|PUT /v1/store/snapshot`).
//! Unversioned paths remain as deprecated aliases.
//!
//! Started plain, the daemon simulates in-process.  Point `sweepctl
//! worker --connect` processes at it and jobs are sharded across the
//! fleet instead — bit-identical either way.

use simdsim_serve::{Server, ServerConfig};
use simdsim_sweep::Scenario;
use std::time::Duration;

const USAGE: &str = "\
usage: serve [OPTIONS]

Run the simdsim sweep service.

options:
  --addr HOST:PORT      listen address (default 127.0.0.1:8844; port 0 = ephemeral)
  --workers N           concurrent sweep jobs (default 2)
  --jobs N              engine worker-pool size per job (default: available parallelism)
  --queue N             job-queue capacity (default 256)
  --retention N         max retained finished jobs (default 4096)
  --ttl-secs N          evict finished jobs older than N seconds (default: never)
  --cache-dir DIR       content-addressed result store (default target/simdsim-cache)
  --no-cache            disable the result store (every submission re-simulates)
  --scenario-file PATH  serve a user scenario from a JSON file (repeatable)
  --fleet-heartbeat-ms N  worker heartbeat cadence; 3 misses evict (default 1000)
  --fleet-lease-ttl-ms N  cell-lease TTL before re-queueing (default 30000)
  --flight-recorder N   flight-recorder ring capacity in events (default 4096)
  --log-json            print one JSON access-log line per request to stdout
  --help                print this help";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = main_impl(&args) {
        eprintln!("serve: {msg}");
        std::process::exit(2);
    }
}

fn main_impl(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => cfg.job_workers = parse_num(&value("--workers")?, "--workers")?,
            "--jobs" => cfg.engine_jobs = Some(parse_num(&value("--jobs")?, "--jobs")?),
            "--queue" => cfg.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--retention" => cfg.job_retention = parse_num(&value("--retention")?, "--retention")?,
            "--ttl-secs" => {
                cfg.job_ttl = Some(Duration::from_secs(parse_num(
                    &value("--ttl-secs")?,
                    "--ttl-secs",
                )? as u64));
            }
            "--fleet-heartbeat-ms" => {
                cfg.fleet.heartbeat_interval = Duration::from_millis(parse_num(
                    &value("--fleet-heartbeat-ms")?,
                    "--fleet-heartbeat-ms",
                )? as u64);
            }
            "--fleet-lease-ttl-ms" => {
                cfg.fleet.lease_ttl = Duration::from_millis(parse_num(
                    &value("--fleet-lease-ttl-ms")?,
                    "--fleet-lease-ttl-ms",
                )? as u64);
            }
            "--flight-recorder" => {
                cfg.flight_recorder = parse_num(&value("--flight-recorder")?, "--flight-recorder")?;
            }
            "--log-json" => cfg.log_json = true,
            "--cache-dir" => cfg.cache_dir = Some(value("--cache-dir")?.into()),
            "--no-cache" => cfg.cache_dir = None,
            "--scenario-file" => {
                let path = value("--scenario-file")?;
                let text =
                    std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
                let scenario: Scenario =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                cfg.extra_scenarios.push(scenario);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            flag => return Err(format!("unknown option `{flag}`")),
        }
    }

    let server = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!("simdsim-serve listening on http://{}", server.addr());
    println!("  GET    /v1/scenarios             — catalog + user scenarios");
    println!("  GET    /v1/sweeps                — list known jobs");
    println!("  POST   /v1/sweeps                — submit a sweep (JSON body)");
    println!("  GET    /v1/sweeps/{{id}}           — job status/progress/result");
    println!("  GET    /v1/sweeps/{{id}}/cells     — stream cells (?since=N long-poll)");
    println!("  DELETE /v1/sweeps/{{id}}           — cancel a queued/running job");
    println!("  POST   /v1/sweeps:batch          — submit many (typed partial failure)");
    println!("  POST   /v1/workers/register      — join the worker fleet");
    println!("  POST   /v1/workers/{{id}}/...      — heartbeat | lease | report");
    println!("  GET    /v1/workers               — fleet status");
    println!("  GET    /v1/store/snapshot        — export the result store");
    println!("  PUT    /v1/store/snapshot        — import a result-store snapshot");
    println!("  GET    /v1/healthz               — liveness + API version");
    println!("  GET    /v1/debug/events          — flight recorder (?trace=&job=&worker=&kind=)");
    println!("  GET    /metrics                  — Prometheus text format");
    println!("  (unversioned paths are deprecated aliases of /v1)");
    // The daemon runs until killed; park this thread forever.
    loop {
        std::thread::park();
    }
}

fn parse_num(v: &str, flag: &str) -> Result<usize, String> {
    v.parse()
        .map_err(|_| format!("{flag} expects a number, got `{v}`"))
}
