//! Service counters, latency histograms, and their Prometheus text
//! rendering.
//!
//! All counters are relaxed atomics — they are monotonic tallies scraped
//! for observability, not synchronisation points — so the request and
//! worker paths pay one uncontended atomic add per event.  Latencies use
//! the log-bucketed [`Histogram`] from `simdsim-obs` (three relaxed adds
//! per observation), rendered in the Prometheus histogram exposition
//! format with one `endpoint` label per request family.

use serde::Serialize;
use simdsim_obs::Histogram;
use simdsim_sweep::{CpiStack, StallCause, NUM_REGIONS, NUM_STALL_CAUSES, REGION_LABELS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// `cause × region` stall-counter slots (the flattened layout of
/// [`CpiStack::stall_slots`](simdsim_sweep::CpiStack)).
const STALL_SLOTS: usize = NUM_STALL_CAUSES * NUM_REGIONS;

/// The endpoint families latency histograms are kept for, in label order.
/// [`endpoint_index`] maps a request onto this table.
pub const HTTP_ENDPOINTS: [&str; 10] = [
    "healthz",
    "scenarios",
    "sweep_submit",
    "sweep_status",
    "sweep_list",
    "sweep_cells",
    "sweep_cancel",
    "metrics",
    "fleet",
    "debug",
];

/// The [`HTTP_ENDPOINTS`] index a request belongs to, from its method and
/// (version-stripped or full) path.  Unknown routes count under the
/// family their prefix suggests, so 404s still land somewhere sensible.
#[must_use]
pub fn endpoint_index(method: &str, path: &str) -> usize {
    let path = path.strip_prefix("/v1").unwrap_or(path);
    let path = if path.is_empty() { "/" } else { path };
    match (method, path) {
        (_, "/healthz") => 0,
        (_, "/scenarios") => 1,
        ("POST", "/sweeps" | "/sweeps:batch") => 2,
        ("GET", p) if p.starts_with("/sweeps/") && p.ends_with("/cells") => 5,
        ("GET", p) if p.starts_with("/sweeps/") => 3,
        ("GET", "/sweeps") => 4,
        ("DELETE", p) if p.starts_with("/sweeps/") => 6,
        (_, "/metrics") => 7,
        (_, p) if p.starts_with("/workers") || p.starts_with("/store/") => 8,
        (_, p) if p.starts_with("/debug/") => 9,
        // Everything else (404s, method probes) is closest to a status
        // poll in cost; attribute it to the catch-all fleet family.
        _ => 8,
    }
}

/// The gauge values a [`MetricsSnapshot`] cannot derive from the counter
/// block — the caller samples them at snapshot time.  A typed struct so
/// forgetting one is a compile error, not a silent zero on `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Fleet workers currently within their liveness contract.
    pub fleet_workers_live: u64,
    /// Cells queued for fleet dispatch and not currently leased.
    pub fleet_pending_cells: u64,
    /// Events the flight recorder has dropped to ring overflow since
    /// startup.  Monotonic, but it lives in the recorder rather than the
    /// counter block, so the caller samples it here like the gauges.
    pub flight_recorder_dropped: u64,
}

/// Shared counter block, updated by connection handlers and job workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests answered, by endpoint family.
    pub requests_healthz: AtomicU64,
    /// `GET /scenarios` requests.
    pub requests_scenarios: AtomicU64,
    /// `POST /sweeps` requests.
    pub requests_submit: AtomicU64,
    /// `GET /sweeps/{id}` requests.
    pub requests_status: AtomicU64,
    /// `GET /sweeps` (listing) requests.
    pub requests_list: AtomicU64,
    /// `GET /sweeps/{id}/cells` (cursor stream) requests.
    pub requests_cells: AtomicU64,
    /// `DELETE /sweeps/{id}` (cancel) requests.
    pub requests_cancel: AtomicU64,
    /// `GET /metrics` requests.
    pub requests_metrics: AtomicU64,
    /// Fleet-surface requests (`/workers/*`, `/store/snapshot`).
    pub requests_fleet: AtomicU64,
    /// `GET /debug/events` (flight-recorder) requests.
    pub requests_debug: AtomicU64,
    /// Requests answered with 4xx/5xx.
    pub requests_errors: AtomicU64,
    /// Jobs accepted onto the queue.
    pub jobs_submitted: AtomicU64,
    /// Of those, submissions coalesced onto an identical in-flight job.
    pub jobs_coalesced: AtomicU64,
    /// Jobs rejected because the queue was full.
    pub jobs_rejected: AtomicU64,
    /// Jobs finished with every cell Ok.
    pub jobs_completed: AtomicU64,
    /// Jobs finished with at least one failed cell.
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled (queued drops and cooperative stops alike).
    pub jobs_cancelled: AtomicU64,
    /// Sweep cells served from the content-addressed store.
    pub cells_cached: AtomicU64,
    /// Sweep cells simulated.
    pub cells_simulated: AtomicU64,
    /// Committed instructions across all simulated cells.
    pub sim_instrs: AtomicU64,
    /// Wall-clock microseconds spent simulating (summed across workers).
    pub sim_wall_micros: AtomicU64,
    /// Superblocks predecoded across all simulated cells.
    pub sim_blocks_cached: AtomicU64,
    /// Dynamic superblocks executed end-to-end on the fused path.
    pub sim_block_hits: AtomicU64,
    /// Dynamic instructions committed on the per-instruction fallback
    /// path (outside any superblock).
    pub sim_side_exits: AtomicU64,
    /// Fleet workers that registered.
    pub fleet_workers_registered: AtomicU64,
    /// Fleet workers evicted for missing heartbeats.
    pub fleet_workers_evicted: AtomicU64,
    /// Leases granted to fleet workers.
    pub fleet_leases_granted: AtomicU64,
    /// Leases that expired without a full report.
    pub fleet_leases_expired: AtomicU64,
    /// Cells leased with cache affinity: the receiving worker had
    /// advertised (or earned, by reporting) the cell's content address.
    pub fleet_leases_affinity: AtomicU64,
    /// Cell results accepted from fleet workers.
    pub fleet_cells_reported: AtomicU64,
    /// Reported results dropped as stale (duplicate or re-queued-and-
    /// finished-elsewhere units).
    pub fleet_reports_stale: AtomicU64,
    /// Cells put back on the queue after a lease expiry or eviction.
    pub fleet_cells_requeued: AtomicU64,
    /// Commit slots lost to each stall cause, split by code region —
    /// the fleet-wide CPI stack, accumulated from every freshly simulated
    /// cell's profile by [`Metrics::record_stalls`].  Flattened
    /// `cause × NUM_REGIONS + region`, matching `CpiStack::stall_slots`.
    pub stall_cycles: [AtomicU64; STALL_SLOTS],
    /// Request latency per endpoint family, indexed by [`HTTP_ENDPOINTS`].
    pub http_ms: [Histogram; HTTP_ENDPOINTS.len()],
    /// Lease-grant→report latency per accepted fleet unit.
    pub fleet_report_ms: Histogram,
}

/// A point-in-time copy of every counter, plus the queue depth sampled at
/// snapshot time.  This is what `/metrics` renders and what
/// `report::render_server_stats` tabulates.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MetricsSnapshot {
    /// `GET /healthz` requests.
    pub requests_healthz: u64,
    /// `GET /scenarios` requests.
    pub requests_scenarios: u64,
    /// `POST /sweeps` requests.
    pub requests_submit: u64,
    /// `GET /sweeps/{id}` requests.
    pub requests_status: u64,
    /// `GET /sweeps` (listing) requests.
    pub requests_list: u64,
    /// `GET /sweeps/{id}/cells` (cursor stream) requests.
    pub requests_cells: u64,
    /// `DELETE /sweeps/{id}` (cancel) requests.
    pub requests_cancel: u64,
    /// `GET /metrics` requests.
    pub requests_metrics: u64,
    /// Fleet-surface requests (`/workers/*`, `/store/snapshot`).
    pub requests_fleet: u64,
    /// `GET /debug/events` (flight-recorder) requests.
    pub requests_debug: u64,
    /// Requests answered with 4xx/5xx.
    pub requests_errors: u64,
    /// Jobs accepted onto the queue.
    pub jobs_submitted: u64,
    /// Of those, submissions coalesced onto an identical in-flight job.
    pub jobs_coalesced: u64,
    /// Jobs rejected because the queue was full.
    pub jobs_rejected: u64,
    /// Jobs finished with every cell Ok.
    pub jobs_completed: u64,
    /// Jobs finished with at least one failed cell.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Queued (not yet running) jobs at snapshot time.
    pub queue_depth: u64,
    /// Cells served from the content-addressed store.
    pub cells_cached: u64,
    /// Cells simulated.
    pub cells_simulated: u64,
    /// Committed instructions across all simulated cells.
    pub sim_instrs: u64,
    /// Seconds of simulation wall time (summed across workers).
    pub sim_wall_seconds: f64,
    /// Superblocks predecoded across all simulated cells.
    pub sim_blocks_cached: u64,
    /// Dynamic superblocks executed end-to-end on the fused path.
    pub sim_block_hits: u64,
    /// Dynamic instructions committed on the per-instruction fallback
    /// path (outside any superblock).
    pub sim_side_exits: u64,
    /// Fleet workers that registered.
    pub fleet_workers_registered: u64,
    /// Fleet workers evicted for missing heartbeats.
    pub fleet_workers_evicted: u64,
    /// Leases granted to fleet workers.
    pub fleet_leases_granted: u64,
    /// Leases that expired without a full report.
    pub fleet_leases_expired: u64,
    /// Cells leased with cache affinity.
    pub fleet_leases_affinity: u64,
    /// Cell results accepted from fleet workers.
    pub fleet_cells_reported: u64,
    /// Reported results dropped as stale.
    pub fleet_reports_stale: u64,
    /// Cells re-queued after a lease expiry or eviction.
    pub fleet_cells_requeued: u64,
    /// Stalled commit slots by `cause × NUM_REGIONS + region`, the
    /// flattened layout of `CpiStack::stall_slots`.
    pub stall_cycles: [u64; STALL_SLOTS],
    /// Live fleet workers at snapshot time (gauge, from [`Gauges`]).
    pub fleet_workers_live: u64,
    /// Cells awaiting dispatch at snapshot time (gauge, from [`Gauges`]).
    pub fleet_pending_cells: u64,
    /// Flight-recorder events dropped to overflow (sampled, [`Gauges`]).
    pub flight_recorder_dropped: u64,
}

impl MetricsSnapshot {
    /// Fraction of resolved cells served from the store, in `[0, 1]`
    /// (0 before any cell resolved).
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cells_cached + self.cells_simulated;
        if total == 0 {
            0.0
        } else {
            self.cells_cached as f64 / total as f64
        }
    }

    /// Aggregate simulation throughput in millions of committed
    /// instructions per second (0 before any simulation).
    #[must_use]
    pub fn simulated_mips(&self) -> f64 {
        if self.sim_wall_seconds <= 0.0 {
            0.0
        } else {
            self.sim_instrs as f64 / self.sim_wall_seconds / 1.0e6
        }
    }

    /// Total HTTP requests across all endpoints.
    #[must_use]
    pub fn requests_total(&self) -> u64 {
        self.requests_healthz
            + self.requests_scenarios
            + self.requests_submit
            + self.requests_status
            + self.requests_list
            + self.requests_cells
            + self.requests_cancel
            + self.requests_metrics
            + self.requests_fleet
            + self.requests_debug
    }
}

impl Metrics {
    /// Records simulation work done by one finished job.
    pub fn record_job(&self, cached: usize, simulated: usize, instrs: u64, wall: Duration) {
        self.cells_cached
            .fetch_add(cached as u64, Ordering::Relaxed);
        self.cells_simulated
            .fetch_add(simulated as u64, Ordering::Relaxed);
        self.sim_instrs.fetch_add(instrs, Ordering::Relaxed);
        self.sim_wall_micros
            .fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
    }

    /// Records the superblock-engine counters aggregated over one
    /// finished job's freshly simulated cells (cache hits replay stored
    /// results and do no block execution).
    pub fn record_blocks(&self, blocks_cached: u64, block_hits: u64, side_exits: u64) {
        self.sim_blocks_cached
            .fetch_add(blocks_cached, Ordering::Relaxed);
        self.sim_block_hits.fetch_add(block_hits, Ordering::Relaxed);
        self.sim_side_exits.fetch_add(side_exits, Ordering::Relaxed);
    }

    /// Folds one cell's cycle-accounting stack into the fleet-wide stall
    /// counters (`simdsim_stall_cycles_total` on `/metrics`).
    pub fn record_stalls(&self, stack: &CpiStack) {
        for (slot, &v) in self.stall_cycles.iter().zip(&stack.stall_slots) {
            if v > 0 {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Records one request's latency under its endpoint family (an index
    /// from [`endpoint_index`]).
    pub fn observe_http(&self, endpoint: usize, ms: f64) {
        self.http_ms[endpoint.min(HTTP_ENDPOINTS.len() - 1)].observe(ms);
    }

    /// Copies every counter.  `queue_depth` and the fleet gauges cannot
    /// be derived from the counter block, so the caller samples them —
    /// the typed [`Gauges`] argument exists because an earlier snapshot
    /// API silently defaulted them to zero and `/metrics` lied.
    #[must_use]
    pub fn snapshot(&self, queue_depth: usize, gauges: Gauges) -> MetricsSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests_healthz: get(&self.requests_healthz),
            requests_scenarios: get(&self.requests_scenarios),
            requests_submit: get(&self.requests_submit),
            requests_status: get(&self.requests_status),
            requests_list: get(&self.requests_list),
            requests_cells: get(&self.requests_cells),
            requests_cancel: get(&self.requests_cancel),
            requests_metrics: get(&self.requests_metrics),
            requests_fleet: get(&self.requests_fleet),
            requests_debug: get(&self.requests_debug),
            requests_errors: get(&self.requests_errors),
            jobs_submitted: get(&self.jobs_submitted),
            jobs_coalesced: get(&self.jobs_coalesced),
            jobs_rejected: get(&self.jobs_rejected),
            jobs_completed: get(&self.jobs_completed),
            jobs_failed: get(&self.jobs_failed),
            jobs_cancelled: get(&self.jobs_cancelled),
            queue_depth: queue_depth as u64,
            cells_cached: get(&self.cells_cached),
            cells_simulated: get(&self.cells_simulated),
            sim_instrs: get(&self.sim_instrs),
            sim_wall_seconds: get(&self.sim_wall_micros) as f64 / 1.0e6,
            sim_blocks_cached: get(&self.sim_blocks_cached),
            sim_block_hits: get(&self.sim_block_hits),
            sim_side_exits: get(&self.sim_side_exits),
            fleet_workers_registered: get(&self.fleet_workers_registered),
            fleet_workers_evicted: get(&self.fleet_workers_evicted),
            fleet_leases_granted: get(&self.fleet_leases_granted),
            fleet_leases_expired: get(&self.fleet_leases_expired),
            fleet_leases_affinity: get(&self.fleet_leases_affinity),
            fleet_cells_reported: get(&self.fleet_cells_reported),
            fleet_reports_stale: get(&self.fleet_reports_stale),
            fleet_cells_requeued: get(&self.fleet_cells_requeued),
            stall_cycles: std::array::from_fn(|i| get(&self.stall_cycles[i])),
            fleet_workers_live: gauges.fleet_workers_live,
            fleet_pending_cells: gauges.fleet_pending_cells,
            flight_recorder_dropped: gauges.flight_recorder_dropped,
        }
    }

    /// Appends every latency-histogram family to a Prometheus exposition
    /// body (the counters render separately via [`render_prometheus`],
    /// which works from a copyable snapshot; histograms render straight
    /// off the atomics).
    pub fn render_histograms(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "# HELP simdsim_http_request_duration_ms Request latency by endpoint family."
        );
        let _ = writeln!(out, "# TYPE simdsim_http_request_duration_ms histogram");
        for (name, hist) in HTTP_ENDPOINTS.iter().zip(&self.http_ms) {
            hist.render_prometheus(
                out,
                "simdsim_http_request_duration_ms",
                &format!("endpoint=\"{name}\""),
            );
        }
        let _ = writeln!(
            out,
            "# HELP simdsim_fleet_report_latency_ms Lease-grant to report latency per accepted unit."
        );
        let _ = writeln!(out, "# TYPE simdsim_fleet_report_latency_ms histogram");
        self.fleet_report_ms
            .render_prometheus(out, "simdsim_fleet_report_latency_ms", "");
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
#[must_use]
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, pairs: &[(&str, u64)]| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for (label, v) in pairs {
            if label.is_empty() {
                let _ = writeln!(out, "{name} {v}");
            } else {
                let _ = writeln!(out, "{name}{{{label}}} {v}");
            }
        }
    };
    counter(
        "simdsim_http_requests_total",
        "HTTP requests answered, by endpoint.",
        &[
            ("endpoint=\"healthz\"", s.requests_healthz),
            ("endpoint=\"scenarios\"", s.requests_scenarios),
            ("endpoint=\"sweep_submit\"", s.requests_submit),
            ("endpoint=\"sweep_status\"", s.requests_status),
            ("endpoint=\"sweep_list\"", s.requests_list),
            ("endpoint=\"sweep_cells\"", s.requests_cells),
            ("endpoint=\"sweep_cancel\"", s.requests_cancel),
            ("endpoint=\"metrics\"", s.requests_metrics),
            ("endpoint=\"fleet\"", s.requests_fleet),
            ("endpoint=\"debug\"", s.requests_debug),
        ],
    );
    counter(
        "simdsim_http_request_errors_total",
        "Requests answered with a 4xx/5xx status.",
        &[("", s.requests_errors)],
    );
    counter(
        "simdsim_jobs_total",
        "Sweep jobs, by disposition.",
        &[
            ("state=\"submitted\"", s.jobs_submitted),
            ("state=\"coalesced\"", s.jobs_coalesced),
            ("state=\"rejected\"", s.jobs_rejected),
            ("state=\"completed\"", s.jobs_completed),
            ("state=\"failed\"", s.jobs_failed),
            ("state=\"cancelled\"", s.jobs_cancelled),
        ],
    );
    counter(
        "simdsim_cells_total",
        "Sweep cells resolved, by source.",
        &[
            ("source=\"cache\"", s.cells_cached),
            ("source=\"simulated\"", s.cells_simulated),
        ],
    );
    counter(
        "simdsim_simulated_instructions_total",
        "Committed instructions across all simulated cells.",
        &[("", s.sim_instrs)],
    );
    counter(
        "simdsim_superblocks_total",
        "Superblock-engine activity across all simulated cells.",
        &[
            ("event=\"predecoded\"", s.sim_blocks_cached),
            ("event=\"fused_hit\"", s.sim_block_hits),
            ("event=\"side_exit\"", s.sim_side_exits),
        ],
    );
    counter(
        "simdsim_fleet_workers_total",
        "Fleet workers, by disposition.",
        &[
            ("event=\"registered\"", s.fleet_workers_registered),
            ("event=\"evicted\"", s.fleet_workers_evicted),
        ],
    );
    counter(
        "simdsim_fleet_leases_total",
        "Work leases, by disposition.",
        &[
            ("event=\"granted\"", s.fleet_leases_granted),
            ("event=\"expired\"", s.fleet_leases_expired),
        ],
    );
    counter(
        "simdsim_leases_affinity_total",
        "Cells leased to the worker whose cache already held their key.",
        &[("", s.fleet_leases_affinity)],
    );
    counter(
        "simdsim_fleet_cells_total",
        "Fleet-dispatched cells, by disposition.",
        &[
            ("event=\"reported\"", s.fleet_cells_reported),
            ("event=\"stale\"", s.fleet_reports_stale),
            ("event=\"requeued\"", s.fleet_cells_requeued),
        ],
    );
    counter(
        "simdsim_flight_recorder_dropped_total",
        "Flight-recorder events dropped to ring overflow.",
        &[("", s.flight_recorder_dropped)],
    );
    {
        let name = "simdsim_stall_cycles_total";
        let _ = writeln!(
            out,
            "# HELP {name} Commit slots lost to each stall cause, by code region."
        );
        let _ = writeln!(out, "# TYPE {name} counter");
        for cause in &StallCause::ALL {
            for (region, label) in REGION_LABELS.iter().enumerate() {
                let v = s.stall_cycles[*cause as usize * NUM_REGIONS + region];
                let _ = writeln!(
                    out,
                    "{name}{{cause=\"{}\",region=\"{label}\"}} {v}",
                    cause.label()
                );
            }
        }
    }

    let mut gauge = |name: &str, help: &str, v: String| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    };
    gauge(
        "simdsim_queue_depth",
        "Jobs queued and not yet running.",
        s.queue_depth.to_string(),
    );
    gauge(
        "simdsim_cache_hit_ratio",
        "Fraction of resolved cells served from the content-addressed store.",
        format!("{:.6}", s.cache_hit_ratio()),
    );
    gauge(
        "simdsim_simulated_wall_seconds",
        "Wall-clock seconds spent simulating, summed across workers.",
        format!("{:.6}", s.sim_wall_seconds),
    );
    gauge(
        "simdsim_simulated_mips",
        "Aggregate simulation throughput in million instructions per second.",
        format!("{:.3}", s.simulated_mips()),
    );
    gauge(
        "simdsim_fleet_workers_live",
        "Fleet workers currently within their liveness contract.",
        s.fleet_workers_live.to_string(),
    );
    gauge(
        "simdsim_fleet_pending_cells",
        "Cells queued for fleet dispatch and not currently leased.",
        s.fleet_pending_cells.to_string(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_render_cover_every_family() {
        let m = Metrics::default();
        m.requests_healthz.fetch_add(2, Ordering::Relaxed);
        m.jobs_submitted.fetch_add(3, Ordering::Relaxed);
        m.fleet_workers_registered.fetch_add(1, Ordering::Relaxed);
        m.fleet_leases_affinity.fetch_add(6, Ordering::Relaxed);
        m.record_job(5, 7, 1_000_000, Duration::from_millis(250));
        m.record_blocks(40, 9_000, 12);
        let mut stack = CpiStack::default();
        stack.stall_slots[StallCause::DataDep as usize * NUM_REGIONS] = 11; // scalar
        stack.stall_slots[StallCause::Memory as usize * NUM_REGIONS + 1] = 23; // vector
        m.record_stalls(&stack);
        m.record_stalls(&stack);
        let s = m.snapshot(
            4,
            Gauges {
                fleet_workers_live: 1,
                fleet_pending_cells: 3,
                flight_recorder_dropped: 9,
            },
        );
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.cells_cached, 5);
        assert!((s.cache_hit_ratio() - 5.0 / 12.0).abs() < 1e-12);
        assert!(s.simulated_mips() > 0.0);

        let text = render_prometheus(&s);
        for needle in [
            "simdsim_http_requests_total{endpoint=\"healthz\"} 2",
            "simdsim_jobs_total{state=\"submitted\"} 3",
            "simdsim_cells_total{source=\"cache\"} 5",
            "simdsim_cells_total{source=\"simulated\"} 7",
            "simdsim_queue_depth 4",
            "# TYPE simdsim_cache_hit_ratio gauge",
            "simdsim_simulated_instructions_total 1000000",
            "simdsim_superblocks_total{event=\"predecoded\"} 40",
            "simdsim_superblocks_total{event=\"fused_hit\"} 9000",
            "simdsim_superblocks_total{event=\"side_exit\"} 12",
            "simdsim_fleet_workers_total{event=\"registered\"} 1",
            "simdsim_leases_affinity_total 6",
            "simdsim_fleet_cells_total{event=\"requeued\"} 0",
            "simdsim_fleet_workers_live 1",
            "simdsim_fleet_pending_cells 3",
            "simdsim_flight_recorder_dropped_total 9",
            "simdsim_stall_cycles_total{cause=\"data_dep\",region=\"scalar\"} 22",
            "simdsim_stall_cycles_total{cause=\"memory\",region=\"vector\"} 46",
            "simdsim_stall_cycles_total{cause=\"issue_width\",region=\"scalar\"} 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn ratios_are_zero_before_any_work() {
        let s = Metrics::default().snapshot(0, Gauges::default());
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.simulated_mips(), 0.0);
        assert_eq!(s.requests_total(), 0);
    }

    #[test]
    fn endpoint_classification_matches_the_router() {
        for (method, path, want) in [
            ("GET", "/v1/healthz", "healthz"),
            ("GET", "/healthz", "healthz"),
            ("POST", "/v1/sweeps", "sweep_submit"),
            ("POST", "/v1/sweeps:batch", "sweep_submit"),
            ("GET", "/v1/sweeps", "sweep_list"),
            ("GET", "/v1/sweeps/7", "sweep_status"),
            ("GET", "/v1/sweeps/7/cells", "sweep_cells"),
            ("GET", "/v1/sweeps/7/profile", "sweep_status"),
            ("DELETE", "/v1/sweeps/7", "sweep_cancel"),
            ("GET", "/metrics", "metrics"),
            ("POST", "/v1/workers/3/lease", "fleet"),
            ("PUT", "/v1/store/snapshot", "fleet"),
            ("GET", "/v1/debug/events", "debug"),
            ("GET", "/no/such/route", "fleet"),
        ] {
            assert_eq!(
                HTTP_ENDPOINTS[endpoint_index(method, path)],
                want,
                "{method} {path}"
            );
        }
    }

    #[test]
    fn latency_histograms_render_as_prometheus_histogram_families() {
        let m = Metrics::default();
        m.observe_http(endpoint_index("POST", "/v1/sweeps"), 3.0);
        m.observe_http(endpoint_index("GET", "/v1/healthz"), 0.1);
        m.fleet_report_ms.observe(42.0);
        let mut text = String::new();
        m.render_histograms(&mut text);
        for needle in [
            "# TYPE simdsim_http_request_duration_ms histogram",
            "simdsim_http_request_duration_ms_bucket{endpoint=\"sweep_submit\",le=\"4\"} 1",
            "simdsim_http_request_duration_ms_bucket{endpoint=\"sweep_submit\",le=\"+Inf\"} 1",
            "simdsim_http_request_duration_ms_count{endpoint=\"healthz\"} 1",
            "# TYPE simdsim_fleet_report_latency_ms histogram",
            "simdsim_fleet_report_latency_ms_bucket{le=\"64\"} 1",
            "simdsim_fleet_report_latency_ms_count 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
