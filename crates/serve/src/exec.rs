//! The execution half of job handling: worker threads that drain the
//! [`JobQueue`](crate::jobs::JobQueue) and drive each job through the
//! sweep engine.
//!
//! Where a job's cells actually run is decided **per job** at pop time
//! through the engine's [`CellExecutor`](simdsim_sweep::CellExecutor)
//! seam: with at least one live fleet worker registered, cells are
//! sharded across the fleet via [`FleetExecutor`]; otherwise the job runs
//! in-process exactly as it always has.  Either way the job observes the
//! same progress stream, the same store, and — the engine being
//! deterministic — bit-identical statistics.

use crate::fleet::{Fleet, FleetExecutor};
use crate::jobs::{Job, JobQueue, StartOutcome};
use crate::metrics::Metrics;
use simdsim_api::SweepResult;
use simdsim_obs::{Event, FlightRecorder};
use simdsim_sweep::{run_with_executor, run_with_progress, EngineOptions};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a job-worker thread needs to execute jobs: the engine
/// options applied to every run, the service counters, and (optionally)
/// the fleet to shard across.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Base engine options (store, pool size); per-job filter and cancel
    /// flag are layered on top.
    pub opts: EngineOptions,
    /// Service counters.
    pub metrics: Arc<Metrics>,
    /// The worker fleet; `None` (or an empty fleet) means every job runs
    /// in-process.
    pub fleet: Option<Arc<Fleet>>,
    /// The flight recorder job lifecycle spans land in.
    pub recorder: Arc<FlightRecorder>,
}

impl Default for ExecContext {
    fn default() -> Self {
        Self {
            opts: EngineOptions::default(),
            metrics: Arc::new(Metrics::default()),
            fleet: None,
            recorder: Arc::new(FlightRecorder::new(1024)),
        }
    }
}

/// Runs one job to completion, publishing progress and streamed cells as
/// they resolve.
pub fn run_job(job: &Job, ctx: &ExecContext) {
    match job.start() {
        StartOutcome::AlreadyTerminal => return,
        StartOutcome::CancelledNow => {
            ctx.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        StartOutcome::Started => {}
    }
    let started = Instant::now();
    ctx.recorder.record(
        Event::new("job.start")
            .with_trace(job.trace.clone())
            .with_job(job.id)
            .with_detail(job.scenario.name.clone()),
    );
    let mut opts = ctx.opts.clone().cancel_flag(Arc::clone(&job.cancel));
    if let Some(f) = &job.filter {
        opts = opts.filter(f.clone());
    }
    let progress = |ev| job.publish_cell(&ev);
    // Fleet dispatch is chosen per job: a worker registering mid-run
    // serves the *next* job, and a fleet going dark mid-job falls back to
    // in-process execution inside `FleetExecutor` itself.
    let report = match ctx.fleet.as_ref().filter(|f| f.live_workers() > 0) {
        Some(fleet) => {
            let executor = FleetExecutor::new(Arc::clone(fleet), ctx.opts.jobs)
                .for_job(job.id, job.trace.clone());
            run_with_executor(&job.scenario, &opts, &progress, &executor)
        }
        None => run_with_progress(&job.scenario, &opts, &progress),
    };

    let result = SweepResult::from_report(&report);
    ctx.metrics.record_job(
        result.cached as usize,
        result.executed as usize,
        report
            .outcomes
            .iter()
            .filter(|o| !o.cached)
            .filter_map(|o| o.stats.as_ref().ok().map(|s| s.instrs))
            .sum(),
        report.simulated_wall(),
    );
    let block_totals = report
        .outcomes
        .iter()
        .filter(|o| !o.cached)
        .filter_map(|o| o.stats.as_ref().ok())
        .fold((0u64, 0u64, 0u64), |acc, s| {
            (
                acc.0 + s.blocks_cached,
                acc.1 + s.block_hits,
                acc.2 + s.side_exits,
            )
        });
    ctx.metrics
        .record_blocks(block_totals.0, block_totals.1, block_totals.2);
    // Fold every freshly simulated cell's CPI stack into the fleet-wide
    // stall counters (`simdsim_stall_cycles_total`).  Both execution
    // paths land here, so in-process and fleet-sharded jobs are counted
    // identically.
    for stack in report
        .outcomes
        .iter()
        .filter(|o| !o.cached)
        .filter_map(|o| o.stats.as_ref().ok().and_then(|s| s.profile.as_ref()))
    {
        ctx.metrics.record_stalls(stack);
    }
    let cancelled = job.cancel.load(Ordering::Relaxed);
    let state = if cancelled {
        ctx.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        simdsim_api::JobState::Cancelled
    } else if result.failed > 0 {
        ctx.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        simdsim_api::JobState::Failed
    } else {
        ctx.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
        simdsim_api::JobState::Done
    };
    ctx.recorder.record(
        Event::new("job.finish")
            .with_trace(job.trace.clone())
            .with_job(job.id)
            .with_dur_ms(started.elapsed().as_secs_f64() * 1e3)
            .with_detail(format!(
                "{state:?} ({} cells, {} cached)",
                report.outcomes.len(),
                result.cached
            )),
    );
    job.finish(state, report.outcomes.len() as u64, result);
}

/// Spawns `n` worker threads draining `queue` until shutdown.
#[must_use]
pub fn spawn_workers(
    n: usize,
    queue: &Arc<JobQueue>,
    ctx: &ExecContext,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n.max(1))
        .map(|i| {
            let queue = Arc::clone(queue);
            let ctx = ctx.clone();
            std::thread::Builder::new()
                .name(format!("sweep-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = queue.pop_blocking() {
                        run_job(&job, &ctx);
                    }
                })
                .expect("spawn sweep worker")
        })
        .collect()
}

/// Polls `job` until it reaches a terminal state, sleeping `interval`
/// between checks (test/CLI helper).
pub fn wait_finished(job: &Job, interval: Duration) {
    while !job.finished() {
        std::thread::sleep(interval);
    }
}
