//! A hand-rolled HTTP/1.1 request parser and response writer over
//! [`std::io`].
//!
//! The build environment has no access to the registry, so the daemon
//! cannot use tokio/hyper; like the workspace's serde shims, this module
//! implements exactly the protocol subset the service needs — `GET` and
//! `POST` with `Content-Length` bodies, persistent connections, and hard
//! limits on every input dimension so a malformed or hostile client costs
//! a bounded amount of memory before being rejected.

use std::io::{BufRead, Write};

/// Maximum accepted request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Maximum accepted total header bytes per request.
pub const MAX_HEADER_BYTES: usize = 32 * 1024;

/// Maximum accepted request-body length in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be parsed, mapped onto the HTTP status the
/// connection handler answers with before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request (status 400).
    BadRequest(String),
    /// Body or header limits exceeded (status 413).
    TooLarge(String),
    /// A protocol feature this server does not implement, e.g. chunked
    /// transfer encoding (status 501).
    NotImplemented(String),
    /// The underlying socket failed mid-request; no response is possible.
    Io(String),
}

impl HttpError {
    /// The HTTP status code this error is answered with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::NotImplemented(_) => 501,
            HttpError::Io(_) => 0,
        }
    }

    /// The error's human-readable message.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m)
            | HttpError::TooLarge(m)
            | HttpError::NotImplemented(m)
            | HttpError::Io(m) => m,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for HttpError {}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target path, query string stripped.
    pub path: String,
    /// The raw query string (without the `?`; empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of query parameter `name` (`?name=value`), if present.
    /// No percent-decoding: the API's parameters are plain integers.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes (CR stripped).
/// Returns `Ok(None)` on clean EOF before any byte of the line.
fn read_line_limited(
    r: &mut impl BufRead,
    max: usize,
    what: &str,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(|e| HttpError::Io(e.to_string()))?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest(format!("unterminated {what}")));
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            break;
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        r.consume(n);
        if line.len() > max {
            return Err(HttpError::TooLarge(format!("{what} exceeds {max} bytes")));
        }
    }
    if line.len() > max {
        return Err(HttpError::TooLarge(format!("{what} exceeds {max} bytes")));
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::BadRequest(format!("{what} is not valid UTF-8")))
}

/// Parses one request off `r`.  Returns `Ok(None)` when the peer closed
/// the connection cleanly between requests (the keep-alive exit path).
///
/// # Errors
///
/// Returns an [`HttpError`] describing the first protocol violation; the
/// caller answers with [`HttpError::status`] and closes the connection.
pub fn parse_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line_limited(r, MAX_REQUEST_LINE, "request line")? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{line}`"
            )))
        }
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version `{v}`"
            )))
        }
    };
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target `{target}` is not an absolute path"
        )));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    let mut content_length = 0usize;
    let mut keep_alive = keep_alive_default;
    loop {
        let Some(line) = read_line_limited(r, MAX_HEADER_BYTES, "header line")? else {
            return Err(HttpError::BadRequest("EOF inside headers".to_owned()));
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge(format!(
                "headers exceed {MAX_HEADER_BYTES} bytes"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line `{line}`"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    HttpError::BadRequest(format!("invalid Content-Length `{value}`"))
                })?;
            }
            "transfer-encoding" => {
                return Err(HttpError::NotImplemented(
                    "chunked transfer encoding is not supported".to_owned(),
                ));
            }
            "connection" => {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
            _ => {}
        }
        headers.push((name, value));
    }

    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(r, &mut body).map_err(|e| HttpError::Io(e.to_string()))?;
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    Ok(Some(Request {
        method: method.to_owned(),
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// One response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers beyond the standard three (content
    /// type/length, connection) — e.g. `Deprecation` on legacy aliases.
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// The same response with an extra header appended.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// A typed JSON error body (`{"code": ..., "error": ...}`) under the
    /// code's canonical status.
    #[must_use]
    pub fn api_error(error: &simdsim_api::ApiError) -> Self {
        let body = serde_json::to_string(error).expect("error body serializes");
        Self::json(error.status(), body)
    }

    /// A typed JSON error body under `status`, with the generic
    /// [`simdsim_api::ErrorCode`] for that status.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&simdsim_api::ApiError::new(
            simdsim_api::ErrorCode::from_status(status),
            message,
        ))
        .expect("error body serializes");
        Self::json(status, body)
    }
}

/// The standard reason phrase for the status codes this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes `resp` to `w` with `Content-Length` and the connection
/// disposition.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in &resp.headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        parse_request(&mut Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let req =
            parse("GET /sweeps/7?verbose=1&since=4 HTTP/1.1\r\nHost: x\r\nX-Trace: abc\r\n\r\n")
                .expect("parses")
                .expect("a request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sweeps/7");
        assert_eq!(req.query, "verbose=1&since=4");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("since"), Some("4"));
        assert_eq!(req.query_param("wait_ms"), None);
        assert_eq!(req.header("x-trace"), Some("abc"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse("POST /sweeps HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .expect("parses")
            .expect("a request");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
        ] {
            let err = parse(bad).expect_err("must reject");
            assert_eq!(err.status(), 400, "{bad:?} → {err:?}");
        }
    }

    #[test]
    fn malformed_headers_are_400() {
        let err = parse("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n").expect_err("must reject");
        assert_eq!(err.status(), 400);
        let err = parse("POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n").expect_err("reject");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_inputs_are_413() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_REQUEST_LINE + 1));
        assert_eq!(parse(&long_line).expect_err("reject").status(), 413);

        let big_headers = format!(
            "GET / HTTP/1.1\r\nX-Fill: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES + 1)
        );
        assert_eq!(parse(&big_headers).expect_err("reject").status(), 413);

        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&big_body).expect_err("reject").status(), 413);
    }

    #[test]
    fn chunked_encoding_is_501() {
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .expect_err("must reject");
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        assert!(parse("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap().keep_alive);
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .unwrap()
                .keep_alive
        );
        assert!(
            parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn keep_alive_parses_consecutive_requests_off_one_stream() {
        let two =
            "GET /healthz HTTP/1.1\r\n\r\nPOST /sweeps HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let mut cur = Cursor::new(two.as_bytes().to_vec());
        let first = parse_request(&mut cur)
            .expect("first parses")
            .expect("some");
        assert_eq!(first.path, "/healthz");
        let second = parse_request(&mut cur)
            .expect("second parses")
            .expect("some");
        assert_eq!(second.path, "/sweeps");
        assert_eq!(second.body, b"{}");
        // Clean EOF between requests ends the keep-alive loop.
        assert!(parse_request(&mut cur).expect("clean EOF").is_none());
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").expect_err("reject");
        assert!(matches!(err, HttpError::Io(_)));
    }

    #[test]
    fn responses_carry_length_and_disposition() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::error(503, "queue full"), false).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("queue full"));
        // Error bodies carry the machine-readable code of the status.
        assert!(text.contains("\"code\":\"queue_full\""), "{text}");
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut out = Vec::new();
        let resp = Response::json(200, "{}")
            .with_header("Deprecation", "true")
            .with_header("Sunset", "Fri, 01 Jan 2027 00:00:00 GMT");
        write_response(&mut out, &resp, true).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        let head = text.split("\r\n\r\n").next().expect("header block");
        assert!(head.contains("Deprecation: true"), "{text}");
        assert!(head.contains("Sunset: Fri, 01 Jan 2027 00:00:00 GMT"));
        assert!(text.ends_with("{}"));
    }
}
