//! The daemon: a `std::net` accept loop, a per-connection keep-alive
//! request loop, and the versioned endpoint router.
//!
//! The public contract is the `/v1` surface defined by `simdsim-api`:
//!
//! | endpoint | method | answer |
//! |---|---|---|
//! | `/v1/healthz` | GET | [`Health`]: liveness + API version + queue depth |
//! | `/v1/scenarios` | GET | `Vec<`[`ScenarioInfo`]`>`: catalog + user scenarios |
//! | `/v1/sweeps` | GET | [`JobList`]: every known job, newest first |
//! | `/v1/sweeps` | POST | submit a [`SweepRequest`] → `202` [`SubmitResponse`] |
//! | `/v1/sweeps/{id}` | GET | [`SweepStatus`]: state/progress/result |
//! | `/v1/sweeps/{id}/cells?since=N` | GET | [`CellsPage`]: long-poll cell stream |
//! | `/v1/sweeps/{id}/profile` | GET | [`ProfileResponse`]: aggregated CPI stack |
//! | `/v1/sweeps/{id}` | DELETE | cancel → [`SweepStatus`] (or 404/409 [`ApiError`]) |
//! | `/v1/sweeps:batch` | POST | submit many → [`BatchSubmitResponse`], typed partial failure |
//! | `/v1/workers/register` | POST | join the fleet → [`simdsim_api::RegisterResponse`] |
//! | `/v1/workers/{id}/heartbeat` | POST | liveness → [`simdsim_api::HeartbeatResponse`] |
//! | `/v1/workers/{id}/lease` | POST | [`LeaseRequest`] → [`simdsim_api::LeaseResponse`] (long-poll) |
//! | `/v1/workers/{id}/report` | POST | [`ReportRequest`] → [`simdsim_api::ReportResponse`] |
//! | `/v1/workers` | GET | [`simdsim_api::FleetStatus`]: fleet listing + queue depth |
//! | `/v1/store/snapshot` | GET | [`StoreSnapshot`]: the shared result cache |
//! | `/v1/store/snapshot` | PUT | import a snapshot → [`SnapshotImported`] |
//! | `/v1/debug/events` | GET | [`DebugEvents`]: the flight recorder, filterable |
//! | `/metrics` | GET | Prometheus text format (unversioned by convention) |
//!
//! Every pre-v1 unversioned route (`/healthz`, `/scenarios`, `/sweeps`,
//! `/sweeps/{id}`, ...) remains as a **deprecated alias** onto the same
//! handler — same handler, same bytes, plus `Deprecation`/`Sunset`
//! response headers announcing the removal date — so existing curl
//! scripts keep working while new consumers speak `/v1`.

use crate::exec::{spawn_workers, ExecContext};
use crate::fleet::{Fleet, FleetConfig};
use crate::http::{parse_request, write_response, Request, Response};
use crate::jobs::{CancelOutcome, JobQueue, RetentionPolicy};
use crate::metrics::{endpoint_index, render_prometheus, Gauges, Metrics};
use simdsim_api::{
    ApiError, BatchSubmitItem, BatchSubmitRequest, BatchSubmitResponse, CellsPage, CpiProfile,
    DebugEvent, DebugEvents, ErrorCode, Health, JobList, LeaseRequest, ProfileResponse,
    RegisterRequest, ReportRequest, ScenarioInfo, SnapshotImported, StoreSnapshot,
    StoreSnapshotEntry, SubmitResponse, SweepRequest,
};
use simdsim_obs::{Event, EventFilter, FlightRecorder, TraceId, TRACE_HEADER};
use simdsim_sweep::{EngineOptions, ResultStore, Scenario, StoredCell, CACHE_SCHEMA_VERSION};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default long-poll hold of `GET /v1/sweeps/{id}/cells` when the cursor
/// is at the stream's end and the job is still running.
const DEFAULT_CELLS_WAIT: Duration = Duration::from_millis(2000);

/// Upper bound on the client-requested `wait_ms` long-poll hold; kept
/// well under the connection read timeout so a polling client never
/// mistakes a held request for a dead server.
const MAX_CELLS_WAIT: Duration = Duration::from_millis(20_000);

/// The `Sunset` date advertised on deprecated unversioned aliases (see
/// the README's deprecation timeline).
const LEGACY_SUNSET: &str = "Fri, 01 Jan 2027 00:00:00 GMT";

/// Events answered by `GET /v1/debug/events` when the client sends no
/// `limit` — newest kept, so a default query is always bounded.
const DEFAULT_DEBUG_LIMIT: usize = 512;

/// How the daemon is wired; every knob has a serving-appropriate default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Bounded job-queue capacity; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Concurrent sweep jobs (worker threads draining the queue).
    pub job_workers: usize,
    /// Worker-pool size inside each job's engine run (`None` = available
    /// parallelism).
    pub engine_jobs: Option<usize>,
    /// Content-addressed result store shared by all jobs (`None` disables
    /// caching — every submission re-simulates).
    pub cache_dir: Option<PathBuf>,
    /// User scenarios served next to the built-in catalog.
    pub extra_scenarios: Vec<Scenario>,
    /// Maximum concurrent HTTP connections; excess connections are
    /// answered `503` and closed.
    pub max_connections: usize,
    /// Per-connection socket read timeout (bounds idle keep-alive
    /// connections).
    pub read_timeout: Duration,
    /// Maximum retained finished jobs; the oldest are evicted first.
    pub job_retention: usize,
    /// Optional age limit on retained finished jobs.
    pub job_ttl: Option<Duration>,
    /// The worker fleet's timing contract (heartbeat cadence, lease TTL).
    pub fleet: FleetConfig,
    /// Flight-recorder ring capacity: how many recent structured events
    /// `GET /v1/debug/events` can look back over (overflow drops oldest).
    pub flight_recorder: usize,
    /// Emit one structured JSON access-log line per request on stdout.
    pub log_json: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8844".to_owned(),
            queue_capacity: 256,
            job_workers: 2,
            engine_jobs: None,
            cache_dir: Some(PathBuf::from("target/simdsim-cache")),
            extra_scenarios: Vec::new(),
            max_connections: 128,
            read_timeout: Duration::from_secs(30),
            job_retention: 4096,
            job_ttl: None,
            fleet: FleetConfig::default(),
            flight_recorder: 4096,
            log_json: false,
        }
    }
}

/// Everything the router needs, shared across connection threads.
struct Shared {
    queue: Arc<JobQueue>,
    metrics: Arc<Metrics>,
    scenarios: Vec<(Scenario, &'static str)>,
    fleet: Arc<Fleet>,
    /// The content-addressed store, doubling as the fleet's shared cache
    /// tier (`None` with caching disabled).
    store: Option<ResultStore>,
    /// The flight recorder behind `GET /v1/debug/events`.
    recorder: Arc<FlightRecorder>,
    /// Whether to print a JSON access-log line per request.
    log_json: bool,
}

/// A running daemon; dropping it does **not** stop the threads — call
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the accept loop and the job workers, and
    /// returns the handle.
    ///
    /// # Errors
    ///
    /// Returns the bind error (e.g. address in use).
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let mut scenarios: Vec<(Scenario, &'static str)> = simdsim_sweep::catalog::all()
            .into_iter()
            .map(|s| (s, "catalog"))
            .collect();
        scenarios.extend(cfg.extra_scenarios.iter().cloned().map(|s| (s, "user")));

        let queue = Arc::new(JobQueue::with_retention(
            cfg.queue_capacity,
            RetentionPolicy {
                max_finished: cfg.job_retention,
                ttl: cfg.job_ttl,
            },
        ));
        let metrics = Arc::new(Metrics::default());
        let recorder = Arc::new(FlightRecorder::new(cfg.flight_recorder));
        let fleet = Arc::new(Fleet::new(
            cfg.fleet,
            Arc::clone(&metrics),
            Arc::clone(&recorder),
        ));
        let shared = Arc::new(Shared {
            queue: Arc::clone(&queue),
            metrics: Arc::clone(&metrics),
            scenarios,
            fleet: Arc::clone(&fleet),
            store: cfg.cache_dir.clone().map(ResultStore::new),
            recorder: Arc::clone(&recorder),
            log_json: cfg.log_json,
        });

        let mut opts = EngineOptions::default();
        if let Some(jobs) = cfg.engine_jobs {
            opts = opts.jobs(jobs);
        }
        if let Some(dir) = &cfg.cache_dir {
            opts = opts.cache(dir.clone());
        }
        let ctx = ExecContext {
            opts,
            metrics: Arc::clone(&metrics),
            fleet: Some(fleet),
            recorder: Arc::clone(&recorder),
        };
        let worker_threads = spawn_workers(cfg.job_workers, &queue, &ctx);

        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let max_conns = cfg.max_connections.max(1);
            let read_timeout = cfg.read_timeout;
            std::thread::Builder::new()
                .name("http-accept".to_owned())
                .spawn(move || {
                    let active = Arc::new(AtomicUsize::new(0));
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        // Responses are small; disable Nagle so polls
                        // don't pay delayed-ACK round trips.
                        let _ = stream.set_nodelay(true);
                        if active.load(Ordering::Acquire) >= max_conns {
                            let mut s = stream;
                            let _ = write_response(
                                &mut s,
                                &Response::error(503, "connection limit reached"),
                                false,
                            );
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let shared = Arc::clone(&shared);
                        let active2 = Arc::clone(&active);
                        let spawned = std::thread::Builder::new()
                            .name("http-conn".to_owned())
                            .spawn(move || {
                                handle_connection(stream, &shared);
                                active2.fetch_sub(1, Ordering::AcqRel);
                            });
                        if spawned.is_err() {
                            // Thread exhaustion: give the slot back, or
                            // the counter would creep toward max_conns
                            // and lock every future connection out.
                            active.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            shared,
            stop,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound socket address (resolves port 0 to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the service counters (what `/metrics`
    /// renders), for in-process embedders like the `loadgen` harness.
    #[must_use]
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        self.shared.metrics.snapshot(
            self.shared.queue.depth(),
            Gauges {
                fleet_workers_live: self.shared.fleet.live_workers() as u64,
                fleet_pending_cells: self.shared.fleet.pending_cells(),
                flight_recorder_dropped: self.shared.recorder.dropped(),
            },
        )
    }

    /// Stops accepting connections, drains no further jobs, and joins the
    /// accept and worker threads.  In-flight connections finish their
    /// current request and then close (bounded by the read timeout).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.queue.shut_down();
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Serves one connection's keep-alive request loop.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        match parse_request(&mut reader) {
            Ok(None) => break, // clean close between requests
            Ok(Some(req)) => {
                let started = Instant::now();
                let resp = route(&req, shared);
                observe_request(&req, resp.status, started.elapsed(), shared);
                if resp.status >= 400 {
                    shared
                        .metrics
                        .requests_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                let keep = req.keep_alive;
                if write_response(&mut writer, &resp, keep).is_err() || !keep {
                    break;
                }
            }
            Err(e) => {
                // Socket-level failures (idle keep-alive hitting the read
                // timeout, peer resets) are connection events, not request
                // errors — only protocol violations get counted and
                // answered.
                let status = e.status();
                if status != 0 {
                    shared
                        .metrics
                        .requests_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let _ =
                        write_response(&mut writer, &Response::error(status, e.message()), false);
                }
                break;
            }
        }
    }
}

/// The request's `X-Simdsim-Trace-Id` header, normalised to the canonical
/// 32-hex-char form; malformed values are treated as absent.
fn request_trace(req: &Request) -> Option<String> {
    req.header(&TRACE_HEADER.to_ascii_lowercase())
        .and_then(TraceId::parse)
        .map(|t| t.to_hex())
}

/// Feeds one answered request into the observability layer: the
/// per-endpoint latency histogram always, a JSONL access-log line on
/// stdout under `--log-json`, and — for mutating methods only, so polls
/// cannot flood the ring — an `http.request` span in the flight recorder.
fn observe_request(req: &Request, status: u16, elapsed: Duration, shared: &Shared) {
    let ms = elapsed.as_secs_f64() * 1e3;
    shared
        .metrics
        .observe_http(endpoint_index(&req.method, &req.path), ms);
    let span = || {
        Event::new("http.request")
            .with_trace(request_trace(req))
            .with_dur_ms(ms)
            .with_detail(format!("{} {} -> {}", req.method, req.path, status))
    };
    if shared.log_json {
        let mut line = span();
        line.ts_ms = simdsim_obs::now_ms();
        println!("{}", line.to_json());
    }
    if matches!(req.method.as_str(), "POST" | "PUT" | "DELETE") {
        shared.recorder.record(span());
    }
}

/// Serializes a DTO into a JSON response.
fn json_dto<T: serde::Serialize>(status: u16, dto: &T) -> Response {
    Response::json(status, serde_json::to_string(dto).expect("DTO serializes"))
}

fn route(req: &Request, shared: &Shared) -> Response {
    let resp = route_inner(req, shared);
    // The versioned prefix is the contract; bare paths are deprecated
    // aliases that answer identically but announce their removal date
    // (`/metrics` is unversioned by Prometheus convention and exempt).
    if req.path.starts_with("/v1") || req.path == "/metrics" {
        resp
    } else {
        resp.with_header("Deprecation", "true")
            .with_header("Sunset", LEGACY_SUNSET)
    }
}

fn route_inner(req: &Request, shared: &Shared) -> Response {
    let bump = |a: &std::sync::atomic::AtomicU64| {
        a.fetch_add(1, Ordering::Relaxed);
    };
    let path = req.path.strip_prefix("/v1").unwrap_or(&req.path);
    let path = if path.is_empty() { "/" } else { path };

    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            bump(&shared.metrics.requests_healthz);
            json_dto(200, &Health::ok(shared.queue.depth() as u64))
        }
        ("GET", "/scenarios") => {
            bump(&shared.metrics.requests_scenarios);
            let list: Vec<ScenarioInfo> = shared
                .scenarios
                .iter()
                .map(|(s, source)| ScenarioInfo {
                    name: s.name.clone(),
                    description: s.description.clone(),
                    cells: s.expand().len() as u64,
                    source: (*source).to_owned(),
                })
                .collect();
            json_dto(200, &list)
        }
        ("GET", "/sweeps") => {
            bump(&shared.metrics.requests_list);
            let jobs = shared
                .queue
                .list()
                .into_iter()
                .map(|(id, job, id_cancelled)| {
                    let mut row = job.summary(id);
                    if id_cancelled {
                        row.state = simdsim_api::JobState::Cancelled;
                    }
                    row
                })
                .collect();
            json_dto(200, &JobList { jobs })
        }
        ("POST", "/sweeps") => {
            bump(&shared.metrics.requests_submit);
            submit_sweep(req, shared)
        }
        ("POST", "/sweeps:batch") => {
            bump(&shared.metrics.requests_submit);
            submit_batch(req, shared)
        }
        ("GET", p) if p.starts_with("/sweeps/") => sweep_get(p, req, shared),
        ("DELETE", p) if p.starts_with("/sweeps/") => {
            bump(&shared.metrics.requests_cancel);
            cancel_sweep(&p["/sweeps/".len()..], shared)
        }
        ("POST", "/workers/register") => {
            bump(&shared.metrics.requests_fleet);
            match body_json::<RegisterRequest>(req) {
                Ok(r) => json_dto(200, &shared.fleet.register(&r)),
                Err(e) => Response::api_error(&e),
            }
        }
        ("GET", "/workers") => {
            bump(&shared.metrics.requests_fleet);
            json_dto(200, &shared.fleet.status())
        }
        ("POST", p) if p.starts_with("/workers/") => {
            bump(&shared.metrics.requests_fleet);
            worker_post(&p["/workers/".len()..], req, shared)
        }
        ("GET", "/store/snapshot") => {
            bump(&shared.metrics.requests_fleet);
            store_export(shared)
        }
        ("PUT", "/store/snapshot") => {
            bump(&shared.metrics.requests_fleet);
            store_import(req, shared)
        }
        ("GET", "/debug/events") => {
            bump(&shared.metrics.requests_debug);
            debug_events(req, shared)
        }
        ("GET", "/metrics") => {
            bump(&shared.metrics.requests_metrics);
            let snapshot = shared.metrics.snapshot(
                shared.queue.depth(),
                Gauges {
                    fleet_workers_live: shared.fleet.live_workers() as u64,
                    fleet_pending_cells: shared.fleet.pending_cells(),
                    flight_recorder_dropped: shared.recorder.dropped(),
                },
            );
            let mut text = render_prometheus(&snapshot);
            shared.metrics.render_histograms(&mut text);
            Response::text(200, text)
        }
        ("GET" | "POST" | "DELETE", _) => Response::api_error(&ApiError::new(
            ErrorCode::NotFound,
            format!("no route for {}", req.path),
        )),
        _ => Response::api_error(&ApiError::new(
            ErrorCode::MethodNotAllowed,
            format!("method {} not allowed", req.method),
        )),
    }
}

/// Which view of a job a `GET /sweeps/{id}[/...]` request asked for.
enum SweepView {
    Status,
    Cells,
    Profile,
}

/// Routes `GET /sweeps/{id}`, `GET /sweeps/{id}/cells` and
/// `GET /sweeps/{id}/profile`.
fn sweep_get(path: &str, req: &Request, shared: &Shared) -> Response {
    let rest = &path["/sweeps/".len()..];
    let (id_text, view) = if let Some(id_text) = rest.strip_suffix("/cells") {
        (id_text, SweepView::Cells)
    } else if let Some(id_text) = rest.strip_suffix("/profile") {
        (id_text, SweepView::Profile)
    } else {
        (rest, SweepView::Status)
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::api_error(&ApiError::new(
            ErrorCode::BadRequest,
            format!("job id must be an integer, got `{id_text}`"),
        ));
    };
    let Some((job, id_cancelled)) = shared.queue.lookup(id) else {
        return Response::api_error(&ApiError::new(
            ErrorCode::UnknownJob,
            format!("no job {id}"),
        ));
    };
    match view {
        SweepView::Status => {
            shared
                .metrics
                .requests_status
                .fetch_add(1, Ordering::Relaxed);
            return json_dto(
                200,
                &shared.queue.status_for(id).expect("job just looked up"),
            );
        }
        SweepView::Profile => {
            // Counted under the status family: a profile poll has the
            // same shape and cost as a status poll.
            shared
                .metrics
                .requests_status
                .fetch_add(1, Ordering::Relaxed);
            let (stack, cells, missing) = job.profile_aggregate();
            let state = if id_cancelled {
                simdsim_api::JobState::Cancelled
            } else {
                job.state()
            };
            return json_dto(
                200,
                &ProfileResponse {
                    id,
                    state,
                    cells,
                    missing,
                    profile: stack.as_ref().map(CpiProfile::from_stack),
                },
            );
        }
        SweepView::Cells => {}
    }

    shared
        .metrics
        .requests_cells
        .fetch_add(1, Ordering::Relaxed);
    let since = match req.query_param("since").map(str::parse::<u64>) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            return Response::api_error(&ApiError::new(
                ErrorCode::BadRequest,
                "`since` must be a non-negative integer",
            ))
        }
    };
    let wait = match req.query_param("wait_ms").map(str::parse::<u64>) {
        None => DEFAULT_CELLS_WAIT,
        Some(Ok(ms)) => Duration::from_millis(ms).min(MAX_CELLS_WAIT),
        Some(Err(_)) => {
            return Response::api_error(&ApiError::new(
                ErrorCode::BadRequest,
                "`wait_ms` must be a non-negative integer",
            ))
        }
    };
    if id_cancelled {
        // A detached submission's stream is over, whatever the shared run
        // is still doing for the ids that did not cancel.
        let page = CellsPage {
            id,
            state: simdsim_api::JobState::Cancelled,
            since,
            next: since,
            total: 0,
            done: true,
            cells: Vec::new(),
        };
        return json_dto(200, &page);
    }
    let page: CellsPage = job.cells_page(id, since, wait);
    json_dto(200, &page)
}

/// Routes `GET /debug/events`: snapshots the flight recorder, filtered by
/// the `trace` / `job` / `worker` / `kind` / `limit` query parameters.
fn debug_events(req: &Request, shared: &Shared) -> Response {
    let mut filter = EventFilter {
        trace: req.query_param("trace").map(str::to_owned),
        kind_prefix: req.query_param("kind").map(str::to_owned),
        limit: DEFAULT_DEBUG_LIMIT,
        ..EventFilter::default()
    };
    for (name, slot) in [("job", &mut filter.job), ("worker", &mut filter.worker)] {
        match req.query_param(name).map(str::parse::<u64>) {
            None => {}
            Some(Ok(id)) => *slot = Some(id),
            Some(Err(_)) => {
                return Response::api_error(&ApiError::new(
                    ErrorCode::BadRequest,
                    format!("`{name}` must be a non-negative integer"),
                ))
            }
        }
    }
    match req.query_param("limit").map(str::parse::<usize>) {
        None => {}
        Some(Ok(n)) => filter.limit = n,
        Some(Err(_)) => {
            return Response::api_error(&ApiError::new(
                ErrorCode::BadRequest,
                "`limit` must be a non-negative integer",
            ))
        }
    }
    let (events, dropped) = shared.recorder.snapshot(&filter);
    json_dto(
        200,
        &DebugEvents {
            events: events.iter().map(DebugEvent::from_event).collect(),
            dropped,
        },
    )
}

/// Routes `DELETE /sweeps/{id}`.
fn cancel_sweep(id_text: &str, shared: &Shared) -> Response {
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::api_error(&ApiError::new(
            ErrorCode::BadRequest,
            format!("job id must be an integer, got `{id_text}`"),
        ));
    };
    match shared.queue.cancel(id) {
        None => Response::api_error(&ApiError::new(
            ErrorCode::UnknownJob,
            format!("no job {id}"),
        )),
        Some((_, CancelOutcome::Cancelled)) => {
            shared
                .metrics
                .jobs_cancelled
                .fetch_add(1, Ordering::Relaxed);
            json_dto(
                200,
                &shared.queue.status_for(id).expect("job just cancelled"),
            )
        }
        // The worker observes the flag and finishes the transition; 202
        // tells the client the cancellation is underway, not done.
        Some((job, CancelOutcome::Cancelling)) => json_dto(202, &job.status(id)),
        Some((_, CancelOutcome::AlreadyFinished(state))) => Response::api_error(&ApiError::new(
            ErrorCode::Conflict,
            format!("job {id} already {state}"),
        )),
    }
}

/// Parses a JSON request body into a DTO, mapping every failure mode onto
/// a `bad_request` [`ApiError`].
fn body_json<T: serde::Deserialize>(req: &Request) -> Result<T, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::new(ErrorCode::BadRequest, "body is not UTF-8"))?;
    simdsim_api::parse_json(text)
        .map_err(|e| ApiError::new(ErrorCode::BadRequest, format!("invalid request body: {e}")))
}

/// Parses a `POST /sweeps` body and queues the job.
fn submit_sweep(req: &Request, shared: &Shared) -> Response {
    let request: SweepRequest = match body_json(req) {
        Ok(r) => r,
        Err(e) => return Response::api_error(&e),
    };
    match submit_one(request, shared, request_trace(req)) {
        Ok(sub) => json_dto(202, &sub),
        Err(e) => Response::api_error(&e),
    }
}

/// Routes `POST /sweeps:batch`: every item is submitted independently, and
/// failures are typed per item rather than failing the whole batch.
fn submit_batch(req: &Request, shared: &Shared) -> Response {
    let request: BatchSubmitRequest = match body_json(req) {
        Ok(r) => r,
        Err(e) => return Response::api_error(&e),
    };
    if request.sweeps.is_empty() {
        return Response::api_error(&ApiError::new(
            ErrorCode::BadRequest,
            "batch must contain at least one sweep",
        ));
    }
    // One client action, one trace: every sweep in the batch shares the
    // caller's trace id (each gets its own when the header is absent).
    let trace = request_trace(req);
    let items: Vec<BatchSubmitItem> = request
        .sweeps
        .into_iter()
        .map(|sweep| match submit_one(sweep, shared, trace.clone()) {
            Ok(sub) => BatchSubmitItem {
                submit: Some(sub),
                error: None,
            },
            Err(e) => BatchSubmitItem {
                submit: None,
                error: Some(e),
            },
        })
        .collect();
    json_dto(200, &BatchSubmitResponse { items })
}

/// Validates one sweep request and queues it, for both the single and the
/// batch submit route.  `trace` is the caller-supplied trace id; a fresh
/// one is generated when absent, so every job is traceable.
fn submit_one(
    request: SweepRequest,
    shared: &Shared,
    trace: Option<String>,
) -> Result<SubmitResponse, ApiError> {
    request
        .validate()
        .map_err(|e| ApiError::new(ErrorCode::BadRequest, e))?;
    let scenario = match (&request.scenario, request.inline) {
        (Some(name), None) => match shared.scenarios.iter().find(|(s, _)| &s.name == name) {
            Some((s, _)) => s.clone(),
            None => {
                return Err(ApiError::new(
                    ErrorCode::UnknownScenario,
                    format!("unknown scenario `{name}` (see GET /v1/scenarios)"),
                ))
            }
        },
        (None, Some(doc)) => doc,
        // validate() established exactly-one-of.
        _ => unreachable!("validated request has exactly one source"),
    };

    let scenario_name = scenario.name.clone();
    let trace = trace.unwrap_or_else(|| TraceId::generate().to_hex());
    match shared.queue.submit(scenario, request.filter, Some(trace)) {
        Ok(sub) => {
            shared
                .metrics
                .jobs_submitted
                .fetch_add(1, Ordering::Relaxed);
            if sub.deduped {
                shared
                    .metrics
                    .jobs_coalesced
                    .fetch_add(1, Ordering::Relaxed);
            }
            // Coalesced submissions observe the surviving job's trace, so
            // the response's trace id always matches the job's events.
            let trace = sub.job.trace.clone();
            shared.recorder.record(
                Event::new("job.submit")
                    .with_trace(trace.clone())
                    .with_job(sub.id)
                    .with_detail(if sub.deduped {
                        format!("{scenario_name} (coalesced)")
                    } else {
                        scenario_name
                    }),
            );
            Ok(SubmitResponse {
                id: sub.id,
                url: format!("/v1/sweeps/{}", sub.id),
                state: sub.job.state(),
                deduped: sub.deduped,
                trace,
            })
        }
        Err(full) => {
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            Err(ApiError::new(ErrorCode::QueueFull, full.to_string()))
        }
    }
}

/// Routes `POST /workers/{id}/heartbeat|lease|report`.
fn worker_post(rest: &str, req: &Request, shared: &Shared) -> Response {
    let Some((id_text, verb)) = rest.split_once('/') else {
        return Response::api_error(&ApiError::new(
            ErrorCode::NotFound,
            format!("no route for {}", req.path),
        ));
    };
    let Ok(worker) = id_text.parse::<u64>() else {
        return Response::api_error(&ApiError::new(
            ErrorCode::BadRequest,
            format!("worker id must be an integer, got `{id_text}`"),
        ));
    };
    match verb {
        "heartbeat" => fleet_reply(shared.fleet.heartbeat(worker)),
        "lease" => {
            // An empty body is a plain "give me work" with the defaults.
            let request: LeaseRequest = if req.body.is_empty() {
                LeaseRequest::default()
            } else {
                match body_json(req) {
                    Ok(r) => r,
                    Err(e) => return Response::api_error(&e),
                }
            };
            fleet_reply(shared.fleet.lease(worker, &request))
        }
        "report" => match body_json::<ReportRequest>(req) {
            Ok(r) => fleet_reply(shared.fleet.report(worker, &r)),
            Err(e) => Response::api_error(&e),
        },
        _ => Response::api_error(&ApiError::new(
            ErrorCode::NotFound,
            format!("no route for {}", req.path),
        )),
    }
}

/// Serializes a fleet call's outcome: the DTO on success, the typed error
/// (e.g. `unknown_worker` after an eviction) otherwise.
fn fleet_reply<T: serde::Serialize>(outcome: Result<T, ApiError>) -> Response {
    match outcome {
        Ok(dto) => json_dto(200, &dto),
        Err(e) => Response::api_error(&e),
    }
}

/// Routes `GET /store/snapshot`: exports the content-addressed store.  A
/// cache-less server answers with an empty snapshot rather than an error so
/// `sweepctl store export` composes with any deployment.
fn store_export(shared: &Shared) -> Response {
    let entries: Vec<StoreSnapshotEntry> = shared
        .store
        .as_ref()
        .map(ResultStore::export)
        .unwrap_or_default()
        .into_iter()
        .map(|(key, cell)| StoreSnapshotEntry {
            key: key.to_string(),
            label: cell.label,
            stats: cell.stats,
        })
        .collect();
    json_dto(
        200,
        &StoreSnapshot {
            schema: CACHE_SCHEMA_VERSION,
            entries,
        },
    )
}

/// Routes `PUT /store/snapshot`: imports entries into the store, skipping
/// keys already present.
fn store_import(req: &Request, shared: &Shared) -> Response {
    let Some(store) = &shared.store else {
        return Response::api_error(&ApiError::new(
            ErrorCode::NotImplemented,
            "this server runs without a result store (started with --no-cache)",
        ));
    };
    let snapshot: StoreSnapshot = match body_json(req) {
        Ok(s) => s,
        Err(e) => return Response::api_error(&e),
    };
    if snapshot.schema != CACHE_SCHEMA_VERSION {
        return Response::api_error(&ApiError::new(
            ErrorCode::BadRequest,
            format!(
                "snapshot schema {} does not match this server's schema {}",
                snapshot.schema, CACHE_SCHEMA_VERSION
            ),
        ));
    }
    let (imported, skipped) = store.import(snapshot.entries.iter().map(|e| {
        (
            e.key.as_str(),
            StoredCell {
                label: e.label.clone(),
                stats: e.stats.clone(),
            },
        )
    }));
    json_dto(
        200,
        &SnapshotImported {
            imported: imported as u64,
            skipped: skipped as u64,
        },
    )
}
