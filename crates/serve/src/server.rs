//! The daemon: a `std::net` accept loop, a per-connection keep-alive
//! request loop, and the endpoint router.
//!
//! | endpoint | method | answer |
//! |---|---|---|
//! | `/healthz` | GET | liveness + queue depth |
//! | `/scenarios` | GET | catalog + user scenarios |
//! | `/sweeps` | POST | submit a sweep → `202` + job id |
//! | `/sweeps/{id}` | GET | job status/progress/result |
//! | `/metrics` | GET | Prometheus text format |

use crate::http::{parse_request, write_response, Request, Response};
use crate::jobs::{spawn_workers, Job, JobQueue};
use crate::metrics::{render_prometheus, Metrics};
use serde::Value;
use simdsim_sweep::{catalog, EngineOptions, Scenario};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the daemon is wired; every knob has a serving-appropriate default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Bounded job-queue capacity; a full queue answers `503`.
    pub queue_capacity: usize,
    /// Concurrent sweep jobs (worker threads draining the queue).
    pub job_workers: usize,
    /// Worker-pool size inside each job's engine run (`None` = available
    /// parallelism).
    pub engine_jobs: Option<usize>,
    /// Content-addressed result store shared by all jobs (`None` disables
    /// caching — every submission re-simulates).
    pub cache_dir: Option<PathBuf>,
    /// User scenarios served next to the built-in catalog.
    pub extra_scenarios: Vec<Scenario>,
    /// Maximum concurrent HTTP connections; excess connections are
    /// answered `503` and closed.
    pub max_connections: usize,
    /// Per-connection socket read timeout (bounds idle keep-alive
    /// connections).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8844".to_owned(),
            queue_capacity: 256,
            job_workers: 2,
            engine_jobs: None,
            cache_dir: Some(PathBuf::from("target/simdsim-cache")),
            extra_scenarios: Vec::new(),
            max_connections: 128,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Everything the router needs, shared across connection threads.
struct Shared {
    queue: Arc<JobQueue>,
    metrics: Arc<Metrics>,
    scenarios: Vec<(Scenario, &'static str)>,
}

/// A running daemon; dropping it does **not** stop the threads — call
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the accept loop and the job workers, and
    /// returns the handle.
    ///
    /// # Errors
    ///
    /// Returns the bind error (e.g. address in use).
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let mut scenarios: Vec<(Scenario, &'static str)> =
            catalog::all().into_iter().map(|s| (s, "catalog")).collect();
        scenarios.extend(cfg.extra_scenarios.iter().cloned().map(|s| (s, "user")));

        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(Metrics::default());
        let shared = Arc::new(Shared {
            queue: Arc::clone(&queue),
            metrics: Arc::clone(&metrics),
            scenarios,
        });

        let mut opts = EngineOptions::default();
        if let Some(jobs) = cfg.engine_jobs {
            opts = opts.jobs(jobs);
        }
        if let Some(dir) = &cfg.cache_dir {
            opts = opts.cache(dir.clone());
        }
        let worker_threads = spawn_workers(cfg.job_workers, &queue, &opts, &metrics);

        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let max_conns = cfg.max_connections.max(1);
            let read_timeout = cfg.read_timeout;
            std::thread::Builder::new()
                .name("http-accept".to_owned())
                .spawn(move || {
                    let active = Arc::new(AtomicUsize::new(0));
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let _ = stream.set_read_timeout(Some(read_timeout));
                        // Responses are small; disable Nagle so polls
                        // don't pay delayed-ACK round trips.
                        let _ = stream.set_nodelay(true);
                        if active.load(Ordering::Acquire) >= max_conns {
                            let mut s = stream;
                            let _ = write_response(
                                &mut s,
                                &Response::error(503, "connection limit reached"),
                                false,
                            );
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let shared = Arc::clone(&shared);
                        let active2 = Arc::clone(&active);
                        let spawned = std::thread::Builder::new()
                            .name("http-conn".to_owned())
                            .spawn(move || {
                                handle_connection(stream, &shared);
                                active2.fetch_sub(1, Ordering::AcqRel);
                            });
                        if spawned.is_err() {
                            // Thread exhaustion: give the slot back, or
                            // the counter would creep toward max_conns
                            // and lock every future connection out.
                            active.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            shared,
            stop,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound socket address (resolves port 0 to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the service counters (what `/metrics`
    /// renders), for in-process embedders like the `loadgen` harness.
    #[must_use]
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.queue.depth())
    }

    /// Stops accepting connections, drains no further jobs, and joins the
    /// accept and worker threads.  In-flight connections finish their
    /// current request and then close (bounded by the read timeout).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.queue.shut_down();
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Serves one connection's keep-alive request loop.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        match parse_request(&mut reader) {
            Ok(None) => break, // clean close between requests
            Ok(Some(req)) => {
                let resp = route(&req, shared);
                if resp.status >= 400 {
                    shared
                        .metrics
                        .requests_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                let keep = req.keep_alive;
                if write_response(&mut writer, &resp, keep).is_err() || !keep {
                    break;
                }
            }
            Err(e) => {
                // Socket-level failures (idle keep-alive hitting the read
                // timeout, peer resets) are connection events, not request
                // errors — only protocol violations get counted and
                // answered.
                let status = e.status();
                if status != 0 {
                    shared
                        .metrics
                        .requests_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let _ =
                        write_response(&mut writer, &Response::error(status, e.message()), false);
                }
                break;
            }
        }
    }
}

fn route(req: &Request, shared: &Shared) -> Response {
    let bump = |a: &std::sync::atomic::AtomicU64| {
        a.fetch_add(1, Ordering::Relaxed);
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            bump(&shared.metrics.requests_healthz);
            Response::json(
                200,
                render(&obj(vec![
                    ("status", Value::Str("ok".to_owned())),
                    ("queue_depth", Value::UInt(shared.queue.depth() as u64)),
                ])),
            )
        }
        ("GET", "/scenarios") => {
            bump(&shared.metrics.requests_scenarios);
            let list: Vec<Value> = shared
                .scenarios
                .iter()
                .map(|(s, source)| {
                    obj(vec![
                        ("name", Value::Str(s.name.clone())),
                        ("description", Value::Str(s.description.clone())),
                        ("cells", Value::UInt(s.expand().len() as u64)),
                        ("source", Value::Str((*source).to_owned())),
                    ])
                })
                .collect();
            Response::json(200, render(&Value::Array(list)))
        }
        ("POST", "/sweeps") => {
            bump(&shared.metrics.requests_submit);
            submit_sweep(req, shared)
        }
        ("GET", path) if path.starts_with("/sweeps/") => {
            bump(&shared.metrics.requests_status);
            match path["/sweeps/".len()..].parse::<u64>() {
                Ok(id) => match shared.queue.get(id) {
                    Some(job) => Response::json(200, job_json(&job)),
                    None => Response::error(404, &format!("no job {id}")),
                },
                Err(_) => Response::error(400, "job id must be an integer"),
            }
        }
        ("GET", "/metrics") => {
            bump(&shared.metrics.requests_metrics);
            let snapshot = shared.metrics.snapshot(shared.queue.depth());
            Response::text(200, render_prometheus(&snapshot))
        }
        ("GET" | "POST", _) => Response::error(404, &format!("no route for {}", req.path)),
        _ => Response::error(405, &format!("method {} not allowed", req.method)),
    }
}

/// Parses a `POST /sweeps` body and queues the job.
///
/// Accepted shapes: `{"scenario": "fig4"}` (catalog/user scenario by
/// name), `{"inline": {...}}` (a full scenario document), each optionally
/// with `"filter": "substring"`.
fn submit_sweep(req: &Request, shared: &Shared) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let v: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let filter = match v.get("filter") {
        None | Some(Value::Null) => None,
        Some(Value::Str(s)) => Some(s.clone()),
        Some(_) => return Response::error(400, "`filter` must be a string"),
    };
    let scenario = match (v.get("scenario"), v.get("inline")) {
        (Some(Value::Str(name)), None) => {
            match shared.scenarios.iter().find(|(s, _)| &s.name == name) {
                Some((s, _)) => s.clone(),
                None => {
                    return Response::error(
                        404,
                        &format!("unknown scenario `{name}` (see GET /scenarios)"),
                    )
                }
            }
        }
        (None, Some(doc)) => match <Scenario as serde::Deserialize>::from_value(doc) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &format!("invalid inline scenario: {e}")),
        },
        _ => {
            return Response::error(
                400,
                "body must have exactly one of `scenario` (name) or `inline` (document)",
            )
        }
    };

    match shared.queue.submit(scenario, filter) {
        Ok(job) => {
            shared
                .metrics
                .jobs_submitted
                .fetch_add(1, Ordering::Relaxed);
            Response::json(
                202,
                render(&obj(vec![
                    ("id", Value::UInt(job.id)),
                    ("url", Value::Str(format!("/sweeps/{}", job.id))),
                    ("state", Value::Str(job.state().as_str().to_owned())),
                ])),
            )
        }
        Err(full) => {
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            Response::error(503, &full.to_string())
        }
    }
}

/// Renders one job's status document.
fn job_json(job: &Job) -> String {
    let progress = job.progress();
    let result = job
        .result()
        .map_or(Value::Null, |r| serde::Serialize::to_value(&r));
    let doc = obj(vec![
        ("id", Value::UInt(job.id)),
        ("scenario", Value::Str(job.scenario.name.clone())),
        ("filter", job.filter.clone().map_or(Value::Null, Value::Str)),
        ("state", Value::Str(job.state().as_str().to_owned())),
        ("progress", serde::Serialize::to_value(&progress)),
        ("result", result),
    ]);
    render(&doc)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).expect("value serializes")
}
