//! Fleet acceptance tests: a coordinator sharding sweeps across worker
//! processes over the `/v1/workers/*` wire surface, including the failure
//! modes the lease protocol exists for — a worker dying mid-lease, a
//! worker missing heartbeats, and duplicate reports.
//!
//! The invariant under test everywhere: a sharded sweep's statistics are
//! **bit-identical** to the single-process golden fixture, whatever the
//! fleet does.

use serde::{Serialize, Value};
use simdsim_api::{
    CellResult, ErrorCode, LeaseRequest, RegisterRequest, ReportRequest, SweepRequest, UnitResult,
};
use simdsim_client::{spawn_worker, SimdsimClient, WorkerConfig};
use simdsim_serve::{FleetConfig, Server, ServerConfig};
use simdsim_sweep::execute_cell;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);
const POLL: Duration = Duration::from_millis(25);

fn start_server(fleet: FleetConfig) -> Server {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: None,
        job_workers: 1,
        engine_jobs: Some(2),
        fleet,
        ..ServerConfig::default()
    };
    Server::start(cfg).expect("server binds an ephemeral port")
}

fn fast_fleet(heartbeat_ms: u64, lease_ttl_ms: u64) -> FleetConfig {
    FleetConfig {
        heartbeat_interval: Duration::from_millis(heartbeat_ms),
        lease_ttl: Duration::from_millis(lease_ttl_ms),
        ..FleetConfig::default()
    }
}

fn connect(server: &Server) -> SimdsimClient {
    SimdsimClient::connect(server.addr(), TIMEOUT).expect("client connects")
}

fn worker_config(server: &Server, name: &str) -> WorkerConfig {
    WorkerConfig {
        addr: server.addr().to_string(),
        name: name.to_owned(),
        slots: 2,
        timeout: TIMEOUT,
        ..WorkerConfig::default()
    }
}

/// Waits until the coordinator reports `n` live workers.
fn wait_live_workers(c: &mut SimdsimClient, n: usize) {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let fleet = c.fleet_status().expect("fleet status");
        if fleet.workers.iter().filter(|w| w.live).count() >= n {
            return;
        }
        assert!(Instant::now() < deadline, "fleet never reached {n} workers");
        std::thread::sleep(POLL);
    }
}

/// Asserts `cells` match the committed single-process golden fixture bit
/// for bit — the determinism contract sharding must preserve.
fn assert_golden_identical(cells: &[CellResult]) {
    let fixture_text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/pipestats.json"),
    )
    .expect("golden fixture present");
    let fixture: Value = serde_json::from_str(&fixture_text).expect("fixture parses");
    assert!(!cells.is_empty());
    for cell in cells {
        let golden = fixture
            .get(&cell.label)
            .unwrap_or_else(|| panic!("fixture has no cell `{}`", cell.label));
        let stats = cell.stats.as_ref().expect("cell has stats");
        let doc = stats.to_value();
        for (served_field, golden_field) in [
            ("cycles", "cycles"),
            ("instrs", "instrs"),
            ("counts", "counts"),
            ("branches", "branches"),
            ("mispredicts", "mispredicts"),
            ("vector_cycles", "vector_region_cycles"),
            ("scalar_cycles", "scalar_region_cycles"),
            ("l1", "l1"),
            ("l2", "l2"),
            ("memsys", "memsys"),
        ] {
            assert_eq!(
                doc.get(served_field),
                golden.get(golden_field),
                "{}: sharded `{served_field}` != golden `{golden_field}`",
                cell.label
            );
        }
    }
}

/// The headline path: two workers join, a sweep is sharded across them,
/// and the result is bit-identical to the single-process golden fixture.
#[test]
fn sweep_sharded_across_two_workers_is_golden_identical() {
    let server = start_server(FleetConfig::default());
    let mut c = connect(&server);

    let w1 = spawn_worker(worker_config(&server, "w1"));
    let w2 = spawn_worker(worker_config(&server, "w2"));
    wait_live_workers(&mut c, 2);

    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    let status = c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");
    assert_eq!(status.state, simdsim_api::JobState::Done);
    let result = status.result.expect("result");
    assert_eq!(result.cells.len(), 4, "fig4 /idct/ yields 4 cells");
    assert_eq!(result.failed, 0);
    assert_golden_identical(&result.cells);

    // The cells actually went over the wire, not through the local pool.
    let snapshot = server.metrics_snapshot();
    assert_eq!(snapshot.fleet_cells_reported, 4);
    assert!(snapshot.fleet_leases_granted >= 1);
    let stats = [w1.stop().expect("w1"), w2.stop().expect("w2")];
    assert_eq!(
        stats.iter().map(|s| s.simulated + s.cached).sum::<u64>(),
        4,
        "the fleet simulated every cell exactly once"
    );
}

/// A worker dies mid-lease (leases every cell, reports nothing, stops
/// heartbeating): its cells are re-queued and completed by a healthy
/// worker, and the stats stay golden-bit-identical.
#[test]
fn worker_death_mid_lease_requeues_cells_and_stays_golden() {
    let server = start_server(fast_fleet(100, 60_000));
    let mut c = connect(&server);

    // The doomed "worker" is this test speaking the wire protocol: it
    // registers, leases everything, and then goes silent.
    let doomed = c
        .register_worker(&RegisterRequest {
            name: "doomed".to_owned(),
            slots: 8,
            ..RegisterRequest::default()
        })
        .expect("register");

    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    let lease = {
        let deadline = Instant::now() + TIMEOUT;
        loop {
            let resp = c
                .lease(
                    doomed.worker_id,
                    &LeaseRequest {
                        max_cells: 8,
                        wait_ms: 1000,
                    },
                )
                .expect("lease");
            if let Some(lease) = resp.lease {
                break lease;
            }
            assert!(Instant::now() < deadline, "no work offered");
        }
    };
    assert_eq!(lease.cells.len(), 4, "the doomed worker holds every cell");

    // Now the worker "crashes": no report, no heartbeat.  A healthy
    // worker joins; once the doomed one misses ~3 heartbeats it is
    // evicted and its cells re-offered.
    let healthy = spawn_worker(worker_config(&server, "healthy"));
    let status = c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");
    assert_eq!(status.state, simdsim_api::JobState::Done);
    let result = status.result.expect("result");
    assert_eq!(result.cells.len(), 4);
    assert_eq!(result.failed, 0, "a dead worker must not fail cells");
    assert_golden_identical(&result.cells);

    let snapshot = server.metrics_snapshot();
    assert_eq!(snapshot.fleet_workers_evicted, 1);
    assert_eq!(snapshot.fleet_cells_requeued, 4);
    assert_eq!(snapshot.fleet_cells_reported, 4);
    healthy.stop().expect("healthy worker");
}

/// Missing heartbeats evicts a worker: its id answers `unknown_worker`
/// (404) everywhere, it disappears from the fleet listing, and
/// re-registering yields a fresh id.
#[test]
fn heartbeat_expiry_evicts_the_worker() {
    let server = start_server(fast_fleet(50, 60_000));
    let mut c = connect(&server);
    let reg = c
        .register_worker(&RegisterRequest::default())
        .expect("register");
    assert_eq!(reg.heartbeat_interval_ms, 50);
    c.heartbeat(reg.worker_id).expect("live worker heartbeats");

    // Miss well over 3 intervals.
    std::thread::sleep(Duration::from_millis(250));
    let err = c.heartbeat(reg.worker_id).expect_err("evicted");
    assert_eq!(
        err.api_error().map(|e| e.code),
        Some(ErrorCode::UnknownWorker)
    );
    let fleet = c.fleet_status().expect("fleet status");
    assert!(fleet.workers.is_empty(), "evicted worker left the listing");

    let again = c
        .register_worker(&RegisterRequest::default())
        .expect("re-register");
    assert_ne!(again.worker_id, reg.worker_id, "ids are never reused");
    assert_eq!(server.metrics_snapshot().fleet_workers_evicted, 1);
}

/// Reporting the same lease twice is a no-op: the duplicate counts as
/// `stale`, nothing double-resolves, and the job's stats are unchanged.
#[test]
fn duplicate_report_is_a_stale_no_op() {
    let server = start_server(FleetConfig::default());
    let mut c = connect(&server);
    let reg = c
        .register_worker(&RegisterRequest {
            name: "dup".to_owned(),
            slots: 8,
            ..RegisterRequest::default()
        })
        .expect("register");

    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    let lease = {
        let deadline = Instant::now() + TIMEOUT;
        loop {
            let resp = c
                .lease(
                    reg.worker_id,
                    &LeaseRequest {
                        max_cells: 8,
                        wait_ms: 1000,
                    },
                )
                .expect("lease");
            if let Some(lease) = resp.lease {
                break lease;
            }
            assert!(Instant::now() < deadline, "no work offered");
        }
    };
    assert_eq!(lease.cells.len(), 4);

    let results: Vec<UnitResult> = lease
        .cells
        .iter()
        .map(|leased| {
            let run = execute_cell(&leased.cell);
            UnitResult {
                unit: leased.unit,
                cached: false,
                wall_ms: run.wall.as_secs_f64() * 1000.0,
                stats: Some(run.stats.expect("cell simulates")),
                error: None,
                phases: Some(run.phases),
            }
        })
        .collect();
    let report = ReportRequest {
        lease_id: lease.lease_id,
        results,
        spans: Vec::new(),
    };
    let first = c.report(reg.worker_id, &report).expect("report");
    assert_eq!((first.accepted, first.stale), (4, 0));

    // The retry (a worker resending after a lost response) changes
    // nothing: deterministic simulation makes the payload bit-identical,
    // and the coordinator had already resolved the units.
    let second = c.report(reg.worker_id, &report).expect("duplicate report");
    assert_eq!((second.accepted, second.stale), (0, 4));

    let status = c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");
    assert_eq!(status.state, simdsim_api::JobState::Done);
    let result = status.result.expect("result");
    assert_eq!(result.cells.len(), 4, "no cell resolved twice");
    assert_golden_identical(&result.cells);
    let snapshot = server.metrics_snapshot();
    assert_eq!(snapshot.fleet_cells_reported, 4);
    assert_eq!(snapshot.fleet_reports_stale, 4);
}

/// A store snapshot round-trips between two servers: export from one,
/// import into the other, and the second serves the sweep from cache
/// without a single simulation.
#[test]
fn store_snapshot_round_trips_between_servers() {
    let dir = std::env::temp_dir().join(format!("simdsim-fleet-test-{}", std::process::id()));
    let src_dir = dir.join("src");
    let dst_dir = dir.join("dst");
    let _ = std::fs::remove_dir_all(&dir);

    let src = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: Some(src_dir),
        job_workers: 1,
        engine_jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("source server");
    let mut c = connect(&src);
    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");
    let snapshot = c.store_export().expect("export");
    assert_eq!(snapshot.entries.len(), 4);
    src.shutdown();

    let dst = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: Some(dst_dir),
        job_workers: 1,
        engine_jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("destination server");
    let mut c = connect(&dst);
    let imported = c.store_import(&snapshot).expect("import");
    assert_eq!((imported.imported, imported.skipped), (4, 0));
    // Importing the same snapshot again skips every existing key.
    let again = c.store_import(&snapshot).expect("re-import");
    assert_eq!((again.imported, again.skipped), (0, 4));

    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    let status = c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");
    let result = status.result.expect("result");
    assert_eq!(
        (result.cached, result.executed),
        (4, 0),
        "the imported snapshot served the whole sweep"
    );
    assert_golden_identical(&result.cells);
    dst.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
