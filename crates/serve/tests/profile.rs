//! Acceptance tests for the cycle-accounting profile surface:
//! `GET /v1/sweeps/{id}/profile`, per-cell `CellResult.profile`, and the
//! sum-to-total invariant (`issue + Σ stalls == cycles × way`) that makes
//! a CPI stack trustworthy.

use simdsim_api::{CellResult, CpiProfile, ErrorCode, JobState, SweepRequest};
use simdsim_client::{ClientError, SimdsimClient};
use simdsim_serve::{Server, ServerConfig};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);
const POLL: Duration = Duration::from_millis(25);

fn start_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: None,
        job_workers: 1,
        engine_jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> SimdsimClient {
    SimdsimClient::connect(server.addr(), TIMEOUT).expect("client connects")
}

/// Every accounted slot must be explained: retired slots plus stalled
/// slots equals the commit bandwidth the run had.
fn assert_sums_to_total(p: &CpiProfile, what: &str) {
    assert_eq!(
        p.issue + p.stall_total(),
        p.slots,
        "{what}: issue {} + stalls {} != slots {}",
        p.issue,
        p.stall_total(),
        p.slots
    );
    if p.way > 0 {
        assert_eq!(
            p.slots,
            p.cycles * p.way,
            "{what}: slots != cycles × way at fixed width"
        );
    }
    let class_total: u64 = p.classes.iter().map(|c| c.slots).sum();
    assert_eq!(
        class_total, p.issue,
        "{what}: per-class retired slots must partition the issue slots"
    );
}

/// The tentpole acceptance path: run a sweep, read the aggregate CPI
/// stack over the wire, and check it is exactly the sum of the per-cell
/// stacks — with every level obeying the sum-to-total invariant.
#[test]
fn profile_route_aggregates_cell_stacks_and_sums_to_total() {
    let server = start_server();
    let mut c = connect(&server);

    let id = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit")
        .id;
    let mut streamed: Vec<CellResult> = Vec::new();
    let status = c
        .stream_cells(id, |cell| streamed.push(cell.clone()))
        .expect("stream");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(streamed.len(), 4, "fig4 /idct/ yields 4 cells");

    // Every simulated cell carries its own stack, each internally
    // consistent.
    for cell in &streamed {
        let p = cell
            .profile
            .as_ref()
            .unwrap_or_else(|| panic!("cell {} has no profile", cell.label));
        assert!(p.cycles > 0, "{}: empty profile", cell.label);
        assert_sums_to_total(p, &cell.label);
    }

    // The aggregate route reports all four cells contributing and obeys
    // the same invariant.
    let resp = c.profile(id).expect("profile route");
    assert_eq!(resp.id, id);
    assert_eq!(resp.state, JobState::Done);
    assert_eq!(resp.cells, 4);
    assert_eq!(resp.missing, 0);
    let agg = resp.profile.as_ref().expect("aggregate stack");
    assert_sums_to_total(agg, "aggregate");

    // Aggregate == sum of the parts, not a resampling: cycles, slots,
    // issue, and every stall row line up with the per-cell stacks.
    let cell_profiles: Vec<&CpiProfile> =
        streamed.iter().filter_map(|c| c.profile.as_ref()).collect();
    assert_eq!(
        agg.cycles,
        cell_profiles.iter().map(|p| p.cycles).sum::<u64>()
    );
    assert_eq!(
        agg.slots,
        cell_profiles.iter().map(|p| p.slots).sum::<u64>()
    );
    assert_eq!(
        agg.issue,
        cell_profiles.iter().map(|p| p.issue).sum::<u64>()
    );
    assert_eq!(agg.way, 2, "fig4 is a fixed 2-way sweep");
    for row in &agg.stalls {
        let from_cells: u64 = cell_profiles
            .iter()
            .flat_map(|p| &p.stalls)
            .filter(|e| e.cause == row.cause && e.region == row.region)
            .map(|e| e.slots)
            .sum();
        assert_eq!(
            row.slots, from_cells,
            "aggregate {}/{} diverges from cell sum",
            row.cause, row.region
        );
    }
    // Rows are rendered largest-first so a dashboard can truncate.
    assert!(
        agg.stalls.windows(2).all(|w| w[0].slots >= w[1].slots),
        "stall rows sorted descending"
    );

    server.shutdown();
}

/// Degenerate and error answers: an empty job has a `null` profile (not
/// a zeroed one), and an unknown id is a typed 404.
#[test]
fn profile_route_handles_empty_jobs_and_unknown_ids() {
    let server = start_server();
    let mut c = connect(&server);

    let id = c
        .submit(&SweepRequest::by_name("fig4").filter("/no-such-cell/"))
        .expect("submit")
        .id;
    let _ = c.wait_timeout(id, POLL, TIMEOUT).expect("done");
    let resp = c.profile(id).expect("profile of an empty job");
    assert_eq!(resp.state, JobState::Done);
    assert_eq!(resp.cells, 0);
    assert_eq!(resp.missing, 0);
    assert!(
        resp.profile.is_none(),
        "no contributing cells distinguishes itself from an all-zero stack"
    );

    match c.profile(id + 999) {
        Err(ClientError::Api { status, error }) => {
            assert_eq!(status, 404);
            assert_eq!(error.code, ErrorCode::UnknownJob);
        }
        other => panic!("expected unknown_job, got {other:?}"),
    }

    server.shutdown();
}

/// The stall counters exported on `/metrics` agree with the aggregate
/// stack: what the profile route explains is what Prometheus scrapes.
#[test]
fn metrics_stall_counters_match_the_job_aggregate() {
    let server = start_server();
    let mut c = connect(&server);

    let id = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit")
        .id;
    let _ = c.wait_timeout(id, POLL, TIMEOUT).expect("done");
    let agg = c
        .profile(id)
        .expect("profile")
        .profile
        .expect("aggregate stack");

    let scrape = c.http().get("/metrics").expect("scrape");
    assert_eq!(scrape.status, 200);
    let body = scrape.body_str();
    let mut exported = 0u64;
    for line in body
        .lines()
        .filter(|l| l.starts_with("simdsim_stall_cycles_total{"))
    {
        let v: u64 = line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .expect("counter sample parses");
        exported += v;
    }
    assert_eq!(
        exported,
        agg.stall_total(),
        "exported stall slots != job aggregate"
    );
    // Every cause appears with both region labels even at zero, so
    // dashboards never see a vanishing series.
    for cause in [
        "data_dep",
        "fu_contention",
        "issue_width",
        "branch_recovery",
        "l1",
        "l2",
        "memory",
        "rename_queue",
    ] {
        for region in ["scalar", "vector"] {
            assert!(
                body.contains(&format!(
                    "simdsim_stall_cycles_total{{cause=\"{cause}\",region=\"{region}\"}}"
                )),
                "missing series {cause}/{region}"
            );
        }
    }

    server.shutdown();
}
