//! v1-contract acceptance tests: cursor streaming, coalescing,
//! cancellation, the job listing, and retention — all driven through
//! `SimdsimClient` against a real ephemeral-port daemon.

use serde::{Serialize, Value};
use simdsim_api::{
    BatchSubmitResponse, CellResult, ErrorCode, JobState, SweepRequest, TRACE_HEADER,
};
use simdsim_client::{ClientError, SimdsimClient};
use simdsim_serve::{Server, ServerConfig};
use simdsim_sweep::Scenario;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);
const POLL: Duration = Duration::from_millis(25);

fn start_server(cfg_mut: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: None,
        job_workers: 1,
        engine_jobs: Some(2),
        ..ServerConfig::default()
    };
    cfg_mut(&mut cfg);
    Server::start(cfg).expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> SimdsimClient {
    SimdsimClient::connect(server.addr(), TIMEOUT).expect("client connects")
}

/// The acceptance path: submit → stream cells through the `?since=`
/// cursor while the job runs → final stats — with the streamed per-cell
/// statistics bit-identical to the committed golden fixture, a duplicate
/// concurrent submission observed as one engine run, and the flow closed
/// out by a cancel (409: the shared job already finished).
#[test]
fn submit_stream_dedup_and_golden_identical_cells() {
    let server = start_server(|_| {});
    let mut c = connect(&server);
    let request = SweepRequest::by_name("fig4").filter("/idct/");

    let first = c.submit(&request).expect("submit");
    assert!(!first.deduped);
    assert_eq!(first.url, format!("/v1/sweeps/{}", first.id));

    // An identical submission while the first is queued/running does not
    // queue a second engine run: it aliases the same job.
    let dup = c.submit(&request).expect("duplicate submit");
    assert!(dup.deduped, "identical in-flight submission coalesces");
    assert!(dup.id > first.id);

    // Stream the first job's cells through the long-poll cursor.
    let mut streamed: Vec<CellResult> = Vec::new();
    let status = c
        .stream_cells(first.id, |cell| streamed.push(cell.clone()))
        .expect("stream");
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.id, first.id);
    assert_eq!(streamed.len(), 4, "fig4 /idct/ yields 4 cells");
    assert!(
        streamed.iter().all(|cell| !cell.cached),
        "no cache configured — every cell was simulated"
    );

    // The streamed statistics match the committed golden fixture bit for
    // bit (match by label: stream order is completion order).
    let fixture_text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/pipestats.json"),
    )
    .expect("golden fixture present");
    let fixture: Value = serde_json::from_str(&fixture_text).expect("fixture parses");
    for cell in &streamed {
        let golden = fixture
            .get(&cell.label)
            .unwrap_or_else(|| panic!("fixture has no cell `{}`", cell.label));
        let stats = cell.stats.as_ref().expect("streamed cell has stats");
        let doc = stats.to_value();
        for (served_field, golden_field) in [
            ("cycles", "cycles"),
            ("instrs", "instrs"),
            ("counts", "counts"),
            ("branches", "branches"),
            ("mispredicts", "mispredicts"),
            ("vector_cycles", "vector_region_cycles"),
            ("scalar_cycles", "scalar_region_cycles"),
            ("l1", "l1"),
            ("l2", "l2"),
            ("memsys", "memsys"),
        ] {
            assert_eq!(
                doc.get(served_field),
                golden.get(golden_field),
                "{}: streamed `{served_field}` != golden `{golden_field}`",
                cell.label
            );
        }
    }

    // The duplicate id observes the same finished run: identical cells,
    // nothing executed twice.
    let dup_status = c.wait_timeout(dup.id, POLL, TIMEOUT).expect("dup status");
    assert_eq!(dup_status.state, JobState::Done);
    assert_eq!(dup_status.id, dup.id, "alias id reported under itself");
    let dup_result = dup_status.result.expect("result");
    assert_eq!(dup_result.cells.len(), 4);
    let mut by_index = streamed.clone();
    by_index.sort_by_key(|cell| cell.index);
    for (a, b) in by_index.iter().zip(&dup_result.cells) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.stats, b.stats, "stats diverged for {}", a.label);
    }

    // Exactly one engine run happened: 4 simulated cells total, one
    // coalesce recorded, zero served from cache.
    let snap = server.metrics_snapshot();
    assert_eq!(snap.cells_simulated, 4, "one engine run for two ids");
    assert_eq!(snap.cells_cached, 0);
    assert_eq!(snap.jobs_coalesced, 1);
    assert_eq!(snap.jobs_completed, 1);

    // Closing the flow: cancelling the already-finished job is a typed
    // conflict, not a silent no-op.
    match c.cancel(first.id) {
        Err(ClientError::Api { status, error }) => {
            assert_eq!(status, 409);
            assert_eq!(error.code, ErrorCode::Conflict);
        }
        other => panic!("expected 409 conflict, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn cancelling_a_queued_job_drops_it_before_it_runs() {
    let server = start_server(|_| {});
    let mut c = connect(&server);

    // Occupy the single worker, then queue a second job.
    let blocker = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("blocker")
        .id;
    let queued = c
        .submit(&SweepRequest::by_name("fig4").filter("/rgb/"))
        .expect("queued")
        .id;

    let cancelled = c.cancel(queued).expect("cancel");
    assert_eq!(cancelled.state, JobState::Cancelled);
    assert_eq!(cancelled.id, queued);

    let status = c.status(queued).expect("status");
    assert_eq!(status.state, JobState::Cancelled);
    assert!(status.result.is_none(), "never ran — no result");

    // The cancelled job's cell stream terminates immediately and empty.
    let page = c
        .cells(queued, 0, Duration::from_millis(10))
        .expect("cells");
    assert!(page.done);
    assert!(page.cells.is_empty());

    // Cancelling again is a conflict; the blocker still completes.
    match c.cancel(queued) {
        Err(ClientError::Api { error, .. }) => assert_eq!(error.code, ErrorCode::Conflict),
        other => panic!("expected conflict, got {other:?}"),
    }
    let done = c
        .wait_timeout(blocker, POLL, TIMEOUT)
        .expect("blocker finishes");
    assert_eq!(done.state, JobState::Done);

    let snap = server.metrics_snapshot();
    assert_eq!(snap.jobs_cancelled, 1);
    server.shutdown();
}

#[test]
fn cancelling_a_running_job_stops_between_cells() {
    let server = start_server(|cfg| cfg.engine_jobs = Some(1));
    let mut c = connect(&server);

    // A wide sweep: every kernel × every extension at 2-way, simulated
    // one cell at a time.
    let wide = Scenario::new("wide", "cancellation fodder")
        .kernels(simdsim_kernels_names())
        .exts(simdsim_isa::Ext::ALL)
        .ways([2]);
    let id = c.submit(&SweepRequest::inline(wide)).expect("submit").id;

    // Wait for the first cell to resolve, then cancel mid-run.
    let page = c.cells(id, 0, Duration::from_secs(60)).expect("first page");
    assert!(!page.cells.is_empty(), "at least one cell resolved");
    let resolved_before_cancel = page.next;

    let cancelling = c.cancel(id).expect("cancel accepted");
    assert!(
        matches!(cancelling.state, JobState::Running | JobState::Cancelled),
        "cancel of a live job reports running (202) or already cancelled"
    );

    let status = c.wait_timeout(id, POLL, TIMEOUT).expect("terminal");
    assert_eq!(status.state, JobState::Cancelled);
    let result = status.result.expect("a cancelled run still reports cells");
    assert!(
        result.cells.iter().any(|cell| cell
            .error
            .as_deref()
            .is_some_and(|e| e.contains("cancelled"))),
        "unstarted cells resolve as cancelled errors"
    );
    // Cells resolved before the cancel keep their real statistics.
    for cell in result.cells.iter().take(resolved_before_cancel as usize) {
        assert!(cell.stats.is_some() || cell.error.is_some());
    }
    assert!(
        result.executed < result.cells.len() as u64,
        "the run stopped early: {} executed of {}",
        result.executed,
        result.cells.len()
    );

    let snap = server.metrics_snapshot();
    assert_eq!(snap.jobs_cancelled, 1);
    assert_eq!(snap.jobs_completed, 0);
    server.shutdown();
}

/// Kernel names for the wide cancellation scenario, via the sweep
/// catalog (fig4 is exactly kernels × exts at 2-way).
fn simdsim_kernels_names() -> Vec<String> {
    simdsim_sweep::catalog::all()
        .into_iter()
        .find(|s| s.name == "fig4")
        .expect("fig4 in catalog")
        .workloads
        .iter()
        .map(|w| w.name().to_owned())
        .collect()
}

#[test]
fn job_listing_and_cursor_beyond_end() {
    let server = start_server(|_| {});
    let mut c = connect(&server);

    let a = c
        .submit(&SweepRequest::by_name("fig4").filter("/no-such-cell/"))
        .expect("submit a")
        .id;
    let b = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit b")
        .id;
    let _ = c.wait_timeout(a, POLL, TIMEOUT).expect("a done");
    let _ = c.wait_timeout(b, POLL, TIMEOUT).expect("b done");

    let list = c.list().expect("list");
    assert!(list.jobs.len() >= 2);
    assert!(
        list.jobs.windows(2).all(|w| w[0].id > w[1].id),
        "listing is newest-first"
    );
    let row_a = list.jobs.iter().find(|j| j.id == a).expect("a listed");
    assert_eq!(row_a.state, JobState::Done);
    assert_eq!(row_a.scenario, "fig4");
    assert_eq!(row_a.filter.as_deref(), Some("/no-such-cell/"));
    assert_eq!(row_a.progress.total, 0);

    // A cursor past the end of a finished stream is an empty page with
    // `done`, not an error.
    let page = c.cells(b, 999, Duration::ZERO).expect("beyond-end page");
    assert!(page.cells.is_empty());
    assert_eq!(page.since, 999);
    assert_eq!(page.next, 999);
    assert!(page.done);

    server.shutdown();
}

#[test]
fn finished_jobs_are_evicted_by_the_configured_retention() {
    let server = start_server(|cfg| cfg.job_retention = 2);
    let mut c = connect(&server);

    let mut ids = Vec::new();
    for i in 0..4 {
        let id = c
            .submit(&SweepRequest::by_name("fig4").filter(format!("/evict-{i}/")))
            .expect("submit")
            .id;
        let _ = c.wait_timeout(id, POLL, TIMEOUT).expect("done");
        ids.push(id);
    }
    // One more submission triggers eviction of the oldest finished jobs.
    let live = c
        .submit(&SweepRequest::by_name("fig4").filter("/evict-live/"))
        .expect("submit")
        .id;
    let _ = c.wait_timeout(live, POLL, TIMEOUT).expect("done");

    match c.status(ids[0]) {
        Err(ClientError::Api { status, error }) => {
            assert_eq!(status, 404);
            assert_eq!(error.code, ErrorCode::UnknownJob);
        }
        other => panic!("evicted job still addressable: {other:?}"),
    }
    assert!(c.status(ids[3]).is_ok(), "newest finished jobs retained");

    server.shutdown();
}

/// `POST /v1/sweeps:batch` submits many sweeps in one request with
/// **typed partial failure**: good items queue, bad items carry their own
/// `ApiError`, and positions are preserved.
#[test]
fn batch_submit_has_typed_partial_failure() {
    let server = start_server(|_| {});
    let mut c = connect(&server);

    let batch = c
        .submit_batch(&[
            SweepRequest::by_name("fig4").filter("/idct/"),
            SweepRequest::by_name("no-such-scenario"),
            SweepRequest::default(), // invalid: no scenario at all
            SweepRequest::by_name("fig4").filter("/fir/"),
        ])
        .expect("batch submit");
    assert_eq!(batch.items.len(), 4);

    let ok0 = batch.items[0].submit.as_ref().expect("item 0 queued");
    assert_eq!(ok0.url, format!("/v1/sweeps/{}", ok0.id));
    assert_eq!(
        batch.items[1].error.as_ref().map(|e| e.code),
        Some(ErrorCode::UnknownScenario)
    );
    assert!(batch.items[1].submit.is_none());
    assert_eq!(
        batch.items[2].error.as_ref().map(|e| e.code),
        Some(ErrorCode::BadRequest)
    );
    let ok3 = batch.items[3].submit.as_ref().expect("item 3 queued");
    assert!(ok3.id > ok0.id);

    // The accepted items are real jobs that run to completion.
    for id in [ok0.id, ok3.id] {
        let status = c.wait_timeout(id, POLL, TIMEOUT).expect("job finishes");
        assert_eq!(status.state, JobState::Done);
    }

    // An empty batch is rejected as a whole, not answered with zero items.
    match c.submit_batch(&[]) {
        Err(ClientError::Api { status, error }) => {
            assert_eq!(status, 400);
            assert_eq!(error.code, ErrorCode::BadRequest);
        }
        other => panic!("empty batch accepted: {other:?}"),
    }

    server.shutdown();
}

/// Trace propagation through `POST /v1/sweeps:batch`: without a caller
/// header every accepted item gets its own server-generated trace; with
/// an `X-Simdsim-Trace-Id` header the whole batch — one client action —
/// shares the caller's id.  Either way each item's `SubmitResponse`
/// echoes the trace its job actually runs under.
#[test]
fn batch_submit_propagates_trace_ids_per_item() {
    let server = start_server(|_| {});
    let mut c = connect(&server);

    // Headerless batch: distinct, well-formed traces per item.
    let anon = c
        .submit_batch(&[
            SweepRequest::by_name("fig4").filter("/trace-a/"),
            SweepRequest::by_name("fig4").filter("/trace-b/"),
        ])
        .expect("headerless batch");
    let traces: Vec<String> = anon
        .items
        .iter()
        .map(|item| {
            item.submit
                .as_ref()
                .expect("item queued")
                .trace
                .clone()
                .expect("every job is traceable")
        })
        .collect();
    assert_eq!(traces.len(), 2);
    assert_ne!(traces[0], traces[1], "separate jobs, separate traces");
    for t in &traces {
        assert_eq!(t.len(), 32, "trace ids are 32 hex chars: {t}");
        assert!(t.chars().all(|ch| ch.is_ascii_hexdigit()), "non-hex: {t}");
    }

    // Caller-supplied header: every accepted item shares it, and a
    // per-item failure neither gets a trace nor disturbs its neighbours.
    let trace = "00112233445566778899aabbccddeeff";
    let body = serde_json::to_string(&simdsim_api::BatchSubmitRequest {
        sweeps: vec![
            SweepRequest::by_name("fig4").filter("/trace-c/"),
            SweepRequest::by_name("no-such-scenario"),
            SweepRequest::by_name("fig4").filter("/trace-d/"),
        ],
    })
    .expect("serialize");
    let resp = c
        .http()
        .send_json_with_headers("POST", "/v1/sweeps:batch", &body, &[(TRACE_HEADER, trace)])
        .expect("traced batch");
    assert_eq!(resp.status, 200);
    let shared: BatchSubmitResponse =
        serde_json::from_str(&resp.body_str()).expect("batch response parses");
    assert_eq!(shared.items.len(), 3);
    for idx in [0usize, 2] {
        let sub = shared.items[idx].submit.as_ref().expect("item queued");
        assert_eq!(
            sub.trace.as_deref(),
            Some(trace),
            "item {idx} does not run under the caller's trace"
        );
    }
    assert!(shared.items[1].submit.is_none(), "bad item stays failed");
    assert_eq!(
        shared.items[1].error.as_ref().map(|e| e.code),
        Some(ErrorCode::UnknownScenario)
    );

    server.shutdown();
}

/// Version negotiation: `/v1/healthz` advertises `api_versions`, the
/// typed client connects only when its version is listed.
#[test]
fn health_advertises_api_versions_and_connect_negotiates() {
    let server = start_server(|_| {});
    // `connect` itself performs the handshake — reaching here proves the
    // negotiation passed; assert the advertised surface explicitly too.
    let mut c = connect(&server);
    let h = c.health().expect("health");
    assert_eq!(h.version, simdsim_api::API_VERSION);
    assert_eq!(h.api_versions, vec!["v1".to_owned()]);
    assert!(h.speaks("v1"));
    assert!(!h.speaks("v2"));
    server.shutdown();
}

/// Legacy unversioned aliases answer with `Deprecation`/`Sunset` headers;
/// the `/v1` surface (and `/metrics`, unversioned by convention) do not.
#[test]
fn legacy_aliases_carry_deprecation_headers() {
    let server = start_server(|_| {});
    let mut c = connect(&server);
    let raw = c.http();

    let legacy = raw.get("/healthz").expect("legacy healthz");
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.header("Deprecation"), Some("true"));
    assert_eq!(
        legacy.header("Sunset"),
        Some("Fri, 01 Jan 2027 00:00:00 GMT")
    );

    let v1 = raw.get("/v1/healthz").expect("v1 healthz");
    assert_eq!(v1.status, 200);
    assert_eq!(v1.header("Deprecation"), None, "v1 is not deprecated");
    assert_eq!(v1.header("Sunset"), None);

    let metrics = raw.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("Deprecation"),
        None,
        "/metrics is unversioned by convention, not deprecated"
    );

    server.shutdown();
}

/// `PUT /v1/store/snapshot` against a cache-less server is a typed 501;
/// a schema mismatch is a typed 400; export still answers (empty).
#[test]
fn snapshot_routes_answer_typed_errors_without_a_store() {
    let server = start_server(|_| {}); // cache_dir: None
    let mut c = connect(&server);

    let snapshot = c.store_export().expect("export without a store");
    assert!(snapshot.entries.is_empty());

    match c.store_import(&snapshot) {
        Err(ClientError::Api { status, error }) => {
            assert_eq!(status, 501);
            assert_eq!(error.code, ErrorCode::NotImplemented);
        }
        other => panic!("cache-less import accepted: {other:?}"),
    }
    server.shutdown();
}
