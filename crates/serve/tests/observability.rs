//! Observability acceptance tests: one trace id must link a submission to
//! every span it fans out into — coordinator job/lease events AND the
//! worker-shipped unit spans — through `GET /v1/debug/events`, and the
//! Prometheus surface must expose populated latency histograms after a
//! sweep has run.

use simdsim_api::SweepRequest;
use simdsim_client::{spawn_worker, SimdsimClient, WorkerConfig};
use simdsim_serve::{FleetConfig, Server, ServerConfig};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);
const POLL: Duration = Duration::from_millis(25);

fn start_server() -> Server {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: None,
        job_workers: 1,
        engine_jobs: Some(2),
        fleet: FleetConfig::default(),
        ..ServerConfig::default()
    };
    Server::start(cfg).expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> SimdsimClient {
    SimdsimClient::connect(server.addr(), TIMEOUT).expect("client connects")
}

fn worker_config(server: &Server, name: &str) -> WorkerConfig {
    WorkerConfig {
        addr: server.addr().to_string(),
        name: name.to_owned(),
        slots: 2,
        timeout: TIMEOUT,
        ..WorkerConfig::default()
    }
}

fn wait_live_workers(c: &mut SimdsimClient, n: usize) {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let fleet = c.fleet_status().expect("fleet status");
        if fleet.workers.iter().filter(|w| w.live).count() >= n {
            return;
        }
        assert!(Instant::now() < deadline, "fleet never reached {n} workers");
        std::thread::sleep(POLL);
    }
}

/// The acceptance path: a fleet-sharded job's entire lifecycle — submit,
/// start, lease grants, reports, worker unit spans, finish — shares the
/// one trace id the submission minted.
#[test]
fn one_trace_links_submit_lease_report_and_worker_spans() {
    let server = start_server();
    let mut c = connect(&server);
    let w1 = spawn_worker(worker_config(&server, "w1"));
    let w2 = spawn_worker(worker_config(&server, "w2"));
    wait_live_workers(&mut c, 2);

    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    let trace = sub.trace.clone().expect("submission minted a trace id");
    assert_eq!(trace.len(), 32, "trace ids are 32 hex chars");
    let status = c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");
    assert_eq!(status.state, simdsim_api::JobState::Done);

    let doc = c
        .debug_events(Some(&trace), None, None, None)
        .expect("debug events");
    assert!(
        doc.events
            .iter()
            .all(|e| e.trace.as_deref() == Some(&*trace)),
        "a trace filter must return only that trace's events"
    );
    let kinds: Vec<&str> = doc.events.iter().map(|e| e.kind.as_str()).collect();
    for needed in [
        "job.submit",
        "job.start",
        "lease.grant",
        "lease.report",
        "worker.unit",
        "job.finish",
    ] {
        assert!(
            kinds.contains(&needed),
            "trace {trace} is missing `{needed}` (got {kinds:?})"
        );
    }

    // The worker-shipped unit spans: one per cell, each attributed to a
    // registered worker and to this job.
    let units: Vec<_> = doc
        .events
        .iter()
        .filter(|e| e.kind == "worker.unit")
        .collect();
    assert_eq!(units.len(), 4, "fig4 /idct/ yields 4 unit spans");
    for u in &units {
        assert!(u.worker.is_some(), "unit spans carry the worker id");
        assert_eq!(u.job, Some(sub.id));
        assert!(u.dur_ms.is_some(), "unit spans carry their wall time");
    }

    // Kind-prefix filtering narrows to the worker spans alone.
    let worker_only = c
        .debug_events(Some(&trace), None, None, Some("worker."))
        .expect("filtered debug events");
    assert!(!worker_only.events.is_empty());
    assert!(worker_only
        .events
        .iter()
        .all(|e| e.kind.starts_with("worker.")));

    drop(w1.stop());
    drop(w2.stop());
    server.shutdown();
}

/// `GET /metrics` must expose a Prometheus histogram family with
/// populated buckets once requests have been served, and the fleet report
/// latency family once workers have reported.
#[test]
fn metrics_expose_populated_latency_histograms() {
    let server = start_server();
    let mut c = connect(&server);
    let w = spawn_worker(worker_config(&server, "w"));
    wait_live_workers(&mut c, 1);

    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");

    let resp = c.http().get("/metrics").expect("metrics scrape");
    assert_eq!(resp.status, 200);
    let body = resp.body_str();
    assert!(
        body.contains("# TYPE simdsim_http_request_duration_ms histogram"),
        "metrics must declare the request-latency histogram family"
    );
    assert!(
        body.contains("# TYPE simdsim_fleet_report_latency_ms histogram"),
        "metrics must declare the report-latency histogram family"
    );

    // The +Inf bucket is cumulative, so a populated family shows a
    // non-zero count there.
    let populated = |family: &str| {
        body.lines()
            .filter(|l| l.starts_with(family) && l.contains("le=\"+Inf\""))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum::<u64>()
    };
    assert!(
        populated("simdsim_http_request_duration_ms_bucket") > 0,
        "request-latency buckets must be populated after serving requests"
    );
    assert!(
        populated("simdsim_fleet_report_latency_ms_bucket") > 0,
        "report-latency buckets must be populated after a fleet report"
    );

    drop(w.stop());
    server.shutdown();
}

/// Malformed `GET /v1/debug/events` numeric filters are a typed 400, and
/// `limit` keeps the newest events.
#[test]
fn debug_events_validates_filters_and_honours_limit() {
    let server = start_server();
    let mut c = connect(&server);

    let sub = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("submit");
    c.wait_timeout(sub.id, POLL, TIMEOUT).expect("job finishes");

    let bad = c
        .http()
        .get("/v1/debug/events?job=notanumber")
        .expect("request completes");
    assert_eq!(bad.status, 400, "a malformed job id is a bad request");

    let limited = c
        .http()
        .get("/v1/debug/events?limit=1")
        .expect("request completes");
    assert_eq!(limited.status, 200);
    let doc: simdsim_api::DebugEvents =
        serde_json::from_str(&limited.body_str()).expect("debug events parse");
    assert_eq!(doc.events.len(), 1, "limit=1 returns exactly one event");

    server.shutdown();
}
