//! End-to-end tests of the serving path: a real daemon on an ephemeral
//! port, concurrent clients, golden-identical results, and cache hits on
//! resubmission.

use serde::Value;
use simdsim_serve::{Client, Server, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simdsim-serve-{tag}-{}", std::process::id()))
}

fn start_server(cache_tag: Option<&str>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: cache_tag.map(scratch_dir),
        job_workers: 2,
        engine_jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr(), TIMEOUT).expect("client connects")
}

/// Submits a sweep and returns its job id.
fn submit(client: &mut Client, body: &str) -> u64 {
    let resp = client.post("/sweeps", body).expect("submit");
    assert_eq!(resp.status, 202, "submit failed: {}", resp.body_str());
    let v: Value = serde_json::from_str(&resp.body_str()).expect("submit response parses");
    match v.get("id") {
        Some(Value::UInt(id)) => *id,
        other => panic!("no job id in submit response: {other:?}"),
    }
}

/// Polls a job until it finishes and returns its status document.
fn wait_done(client: &mut Client, id: u64) -> Value {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let resp = client.get(&format!("/sweeps/{id}")).expect("status poll");
        assert_eq!(resp.status, 200, "poll failed: {}", resp.body_str());
        let v: Value = serde_json::from_str(&resp.body_str()).expect("status parses");
        match v.get("state") {
            Some(Value::Str(s)) if s == "done" => return v,
            Some(Value::Str(s)) if s == "failed" => panic!("job {id} failed: {v:?}"),
            Some(Value::Str(_)) => {}
            other => panic!("no state in status document: {other:?}"),
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in time");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The `result.cells` array of a finished job document.
fn cells(doc: &Value) -> &[Value] {
    match doc.get("result").and_then(|r| r.get("cells")) {
        Some(Value::Array(cells)) => cells,
        other => panic!("no cells in result: {other:?}"),
    }
}

#[test]
fn healthz_scenarios_and_routing() {
    let server = start_server(None);
    let mut c = connect(&server);

    let resp = c.get("/healthz").expect("healthz");
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().contains("\"ok\""));

    let resp = c.get("/scenarios").expect("scenarios");
    assert_eq!(resp.status, 200);
    let v: Value = serde_json::from_str(&resp.body_str()).expect("scenario list parses");
    let Value::Array(list) = v else {
        panic!("scenarios is not an array")
    };
    assert!(list.len() >= 6, "catalog has at least 6 scenarios");
    assert!(list
        .iter()
        .any(|s| s.get("name") == Some(&Value::Str("fig4".to_owned()))));

    // Unknown routes, bad ids, bad bodies, bad methods.
    assert_eq!(c.get("/nope").expect("404").status, 404);
    assert_eq!(c.get("/sweeps/abc").expect("400").status, 400);
    assert_eq!(c.get("/sweeps/99999").expect("404").status, 404);
    assert_eq!(c.post("/sweeps", "{not json").expect("400").status, 400);
    assert_eq!(
        c.post("/sweeps", "{\"scenario\":\"fig9\"}")
            .expect("404")
            .status,
        404
    );
    assert_eq!(
        c.post("/sweeps", "{\"scenario\":\"fig4\",\"filter\":7}")
            .expect("400")
            .status,
        400
    );

    server.shutdown();
}

#[test]
fn concurrent_submissions_are_golden_identical_and_resubmission_hits_the_cache() {
    let dir = scratch_dir("golden");
    let _ = std::fs::remove_dir_all(&dir);
    let server = start_server(Some("golden"));
    let addr = server.addr();
    let body = r#"{"scenario":"fig4","filter":"/idct/"}"#;

    // ≥ 8 concurrent clients, each submitting the same sweep 8 times —
    // 64 concurrent POST /sweeps total against the bounded queue.
    let docs: Vec<Value> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr, TIMEOUT).expect("client connects");
                    let ids: Vec<u64> = (0..8).map(|_| submit(&mut c, body)).collect();
                    ids.into_iter()
                        .map(|id| wait_done(&mut c, id))
                        .collect::<Vec<Value>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(docs.len(), 64);

    // Every job resolved the same 4 cells (fig4 × idct × 4 extensions),
    // and every client saw bit-identical statistics.
    let reference = cells(&docs[0]);
    assert_eq!(reference.len(), 4, "fig4 /idct/ filter yields 4 cells");
    for doc in &docs[1..] {
        let got = cells(doc);
        assert_eq!(got.len(), reference.len());
        for (a, b) in reference.iter().zip(got) {
            assert_eq!(a.get("label"), b.get("label"));
            assert_eq!(
                a.get("stats"),
                b.get("stats"),
                "stats diverged across concurrent clients for {:?}",
                a.get("label")
            );
        }
    }

    // The served statistics match the committed golden fixture bit for
    // bit, field by field (CellStats carries a subset of PipeStats plus
    // derived ipc/mips).
    let fixture_text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/pipestats.json"),
    )
    .expect("golden fixture present");
    let fixture: Value = serde_json::from_str(&fixture_text).expect("fixture parses");
    for cell in reference {
        let Some(Value::Str(label)) = cell.get("label") else {
            panic!("cell without label")
        };
        let golden = fixture
            .get(label)
            .unwrap_or_else(|| panic!("fixture has no cell `{label}`"));
        let stats = cell.get("stats").expect("cell has stats");
        for (served_field, golden_field) in [
            ("cycles", "cycles"),
            ("instrs", "instrs"),
            ("counts", "counts"),
            ("branches", "branches"),
            ("mispredicts", "mispredicts"),
            ("vector_cycles", "vector_region_cycles"),
            ("scalar_cycles", "scalar_region_cycles"),
            ("l1", "l1"),
            ("l2", "l2"),
            ("memsys", "memsys"),
        ] {
            assert_eq!(
                stats.get(served_field),
                golden.get(golden_field),
                "{label}: served `{served_field}` != golden `{golden_field}`"
            );
        }
    }

    // Resubmitting the identical sweep is a pure cache hit: no cell
    // re-simulates.
    let mut c = connect(&server);
    let id = submit(&mut c, body);
    let doc = wait_done(&mut c, id);
    match doc.get("result").and_then(|r| r.get("executed")) {
        Some(Value::UInt(0)) => {}
        other => panic!("resubmission re-simulated cells: executed = {other:?}"),
    }
    for cell in cells(&doc) {
        assert_eq!(
            cell.get("cached"),
            Some(&Value::Bool(true)),
            "cell not served from cache: {:?}",
            cell.get("label")
        );
    }

    // /metrics reports the work and the cache hits in Prometheus format.
    let metrics = c.get("/metrics").expect("metrics scrape");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    for needle in [
        "# TYPE simdsim_http_requests_total counter",
        "# TYPE simdsim_cache_hit_ratio gauge",
        "simdsim_jobs_total{state=\"submitted\"} 65",
        "simdsim_cells_total{source=\"cache\"}",
        "simdsim_simulated_mips",
        "simdsim_queue_depth 0",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    // All 65 jobs completed, none failed; at least the resubmission's 4
    // cells were served from the store.
    assert!(text.contains("simdsim_jobs_total{state=\"completed\"} 65"));
    assert!(text.contains("simdsim_jobs_total{state=\"failed\"} 0"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inline_scenarios_and_queue_backpressure() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: None,
        queue_capacity: 2,
        job_workers: 1,
        engine_jobs: Some(1),
        ..ServerConfig::default()
    })
    .expect("server binds");
    let mut c = connect(&server);

    // An inline scenario document runs without being in any catalog.
    let inline = r#"{"inline":{"name":"inline-demo","description":"one cell",
        "workloads":[{"Kernel":"idct"}],"exts":["Vmmx128"],"ways":[2],
        "overrides":[],"instr_limit":500000000}}"#;
    let id = submit(&mut c, inline);
    let doc = wait_done(&mut c, id);
    assert_eq!(cells(&doc).len(), 1);

    // Flood the 2-slot queue; at least one submission must be rejected
    // with 503 (the worker may drain some entries between posts).
    let mut rejected = 0;
    for _ in 0..32 {
        let resp = c
            .post("/sweeps", r#"{"scenario":"fig4","filter":"/idct/"}"#)
            .expect("post");
        match resp.status {
            202 => {}
            503 => rejected += 1,
            s => panic!("unexpected status {s}: {}", resp.body_str()),
        }
    }
    assert!(rejected > 0, "a 2-slot queue must reject a 32-post flood");

    server.shutdown();
}
