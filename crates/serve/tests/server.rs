//! End-to-end tests of the serving path through the typed v1 client: a
//! real daemon on an ephemeral port, concurrent clients, golden-identical
//! results, coalescing, and cache hits on resubmission.

use serde::{Serialize, Value};
use simdsim_api::{ErrorCode, SweepRequest, SweepStatus};
use simdsim_client::{ClientError, SimdsimClient};
use simdsim_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);
const POLL: Duration = Duration::from_millis(25);

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simdsim-serve-{tag}-{}", std::process::id()))
}

fn start_server(cache_tag: Option<&str>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: cache_tag.map(scratch_dir),
        job_workers: 2,
        engine_jobs: Some(2),
        ..ServerConfig::default()
    })
    .expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> SimdsimClient {
    SimdsimClient::connect(server.addr(), TIMEOUT).expect("client connects")
}

fn assert_api_error(result: Result<impl std::fmt::Debug, ClientError>, code: ErrorCode) {
    match result {
        Err(ClientError::Api { status, error }) => {
            assert_eq!(error.code, code, "unexpected code: {error}");
            assert_eq!(status, code.status(), "status must match the code");
        }
        other => panic!("expected typed {code} error, got {other:?}"),
    }
}

#[test]
fn healthz_scenarios_and_typed_error_paths() {
    let server = start_server(None);
    let mut c = connect(&server);

    let health = c.health().expect("healthz");
    assert_eq!(health.status, "ok");
    assert_eq!(health.version, "v1");

    let list = c.scenarios().expect("scenarios");
    assert!(list.len() >= 6, "catalog has at least 6 scenarios");
    let fig4 = list
        .iter()
        .find(|s| s.name == "fig4")
        .expect("fig4 in catalog");
    assert_eq!(fig4.source, "catalog");
    assert!(fig4.cells > 0);

    // Typed error paths: unknown routes, bad ids, bad bodies, unknown
    // scenarios, bad methods — each with its machine-readable code.
    assert_api_error(c.status(99_999), ErrorCode::UnknownJob);
    assert_api_error(c.cancel(99_999), ErrorCode::UnknownJob);
    assert_api_error(
        c.submit(&SweepRequest::by_name("fig9")),
        ErrorCode::UnknownScenario,
    );
    assert_api_error(c.submit(&SweepRequest::default()), ErrorCode::BadRequest);

    // Below the typed client: raw bodies and routes.
    let raw = c.http();
    assert_eq!(raw.get("/nope").expect("404").status, 404);
    assert_eq!(raw.get("/v1/nope").expect("404").status, 404);
    assert_eq!(raw.get("/v1/sweeps/abc").expect("400").status, 400);
    let resp = raw.post("/v1/sweeps", "{not json").expect("400");
    assert_eq!(resp.status, 400);
    assert!(
        resp.body_str().contains("\"code\":\"bad_request\""),
        "malformed JSON answers a typed 400: {}",
        resp.body_str()
    );
    let resp = raw
        .post("/v1/sweeps", "{\"scenario\":\"fig4\",\"filter\":7}")
        .expect("400");
    assert_eq!(resp.status, 400);
    let resp = raw.request("PUT", "/v1/sweeps").expect("405");
    assert_eq!(resp.status, 405);
    assert!(resp.body_str().contains("\"code\":\"method_not_allowed\""));

    server.shutdown();
}

#[test]
fn legacy_unversioned_routes_alias_the_v1_handlers() {
    let server = start_server(None);
    let mut c = connect(&server);
    let raw = c.http();

    // Same handler, same bytes (modulo the sampled queue depth).
    let legacy = raw.get("/healthz").expect("legacy healthz");
    let v1 = raw.get("/v1/healthz").expect("v1 healthz");
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.body_str(), v1.body_str());

    let legacy = raw.get("/scenarios").expect("legacy scenarios");
    let v1 = raw.get("/v1/scenarios").expect("v1 scenarios");
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.body_str(), v1.body_str());

    // A legacy curl-style submission (sparse body) still works, and the
    // returned URL points at the v1 surface.
    let resp = raw
        .post(
            "/sweeps",
            r#"{"scenario":"fig4","filter":"/no-such-cell/"}"#,
        )
        .expect("legacy submit");
    assert_eq!(resp.status, 202, "{}", resp.body_str());
    let v: Value = serde_json::from_str(&resp.body_str()).expect("parses");
    assert!(matches!(v.get("id"), Some(Value::UInt(_))));
    match v.get("url") {
        Some(Value::Str(url)) => assert!(url.starts_with("/v1/sweeps/"), "{url}"),
        other => panic!("no url in submit response: {other:?}"),
    }

    server.shutdown();
}

fn wait_done(client: &mut SimdsimClient, id: u64) -> SweepStatus {
    let status = client.wait_timeout(id, POLL, TIMEOUT).expect("wait");
    assert_eq!(
        status.state,
        simdsim_api::JobState::Done,
        "job {id} ended {}: {status:?}",
        status.state
    );
    status
}

#[test]
fn concurrent_submissions_are_golden_identical_and_resubmission_hits_the_cache() {
    let dir = scratch_dir("golden");
    let _ = std::fs::remove_dir_all(&dir);
    let server = start_server(Some("golden"));
    let addr = server.addr();
    let request = SweepRequest::by_name("fig4").filter("/idct/");

    // ≥ 8 concurrent clients, each submitting the same sweep 8 times —
    // 64 concurrent POST /v1/sweeps total.  Identical in-flight
    // submissions coalesce onto shared engine runs; completed ones are
    // served from the content-addressed store.  Either way every id
    // observes the same bit-identical statistics.
    let docs: Vec<SweepStatus> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let request = request.clone();
                s.spawn(move || {
                    let mut c = SimdsimClient::connect(addr, TIMEOUT).expect("client connects");
                    let ids: Vec<u64> = (0..8)
                        .map(|_| c.submit(&request).expect("submit").id)
                        .collect();
                    ids.into_iter()
                        .map(|id| wait_done(&mut c, id))
                        .collect::<Vec<SweepStatus>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(docs.len(), 64);

    // Every job resolved the same 4 cells (fig4 × idct × 4 extensions),
    // and every client saw bit-identical statistics.
    let reference = &docs[0].result.as_ref().expect("result").cells;
    assert_eq!(reference.len(), 4, "fig4 /idct/ filter yields 4 cells");
    for doc in &docs[1..] {
        let got = &doc.result.as_ref().expect("result").cells;
        assert_eq!(got.len(), reference.len());
        for (a, b) in reference.iter().zip(got) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.index, b.index);
            assert_eq!(
                a.stats, b.stats,
                "stats diverged across concurrent clients for {}",
                a.label
            );
        }
    }

    // The served statistics match the committed golden fixture bit for
    // bit, field by field (CellStats carries a subset of PipeStats plus
    // derived ipc/mips).
    let fixture_text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/pipestats.json"),
    )
    .expect("golden fixture present");
    let fixture: Value = serde_json::from_str(&fixture_text).expect("fixture parses");
    for cell in reference {
        let golden = fixture
            .get(&cell.label)
            .unwrap_or_else(|| panic!("fixture has no cell `{}`", cell.label));
        let stats = cell.stats.as_ref().expect("cell has stats").to_value();
        for (served_field, golden_field) in [
            ("cycles", "cycles"),
            ("instrs", "instrs"),
            ("counts", "counts"),
            ("branches", "branches"),
            ("mispredicts", "mispredicts"),
            ("vector_cycles", "vector_region_cycles"),
            ("scalar_cycles", "scalar_region_cycles"),
            ("l1", "l1"),
            ("l2", "l2"),
            ("memsys", "memsys"),
        ] {
            assert_eq!(
                stats.get(served_field),
                golden.get(golden_field),
                "{}: served `{served_field}` != golden `{golden_field}`",
                cell.label
            );
        }
    }

    // Resubmitting the identical sweep once everything drained is a pure
    // cache hit: no cell re-simulates.
    let mut c = connect(&server);
    let id = c.submit(&request).expect("resubmit").id;
    let doc = wait_done(&mut c, id);
    let result = doc.result.expect("result");
    assert_eq!(result.executed, 0, "resubmission re-simulated cells");
    assert!(result.cells.iter().all(|cell| cell.cached));

    // /metrics reports the work in Prometheus format, and the job
    // accounting balances: every accepted submission either completed as
    // its own run or was coalesced onto one.
    let metrics = c.http().get("/metrics").expect("metrics scrape");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    for needle in [
        "# TYPE simdsim_http_requests_total counter",
        "# TYPE simdsim_cache_hit_ratio gauge",
        "simdsim_jobs_total{state=\"submitted\"} 65",
        "simdsim_jobs_total{state=\"failed\"} 0",
        "simdsim_jobs_total{state=\"cancelled\"} 0",
        "simdsim_cells_total{source=\"cache\"}",
        "simdsim_simulated_mips",
        "simdsim_queue_depth 0",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    let count = |label: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(&format!("simdsim_jobs_total{{state=\"{label}\"}}")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {label} count in:\n{text}"))
    };
    assert_eq!(
        count("completed") + count("coalesced"),
        65,
        "every submission completed or coalesced"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inline_scenarios_and_queue_backpressure() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: None,
        queue_capacity: 2,
        job_workers: 1,
        engine_jobs: Some(1),
        ..ServerConfig::default()
    })
    .expect("server binds");
    let mut c = connect(&server);

    // An inline scenario document runs without being in any catalog.
    let inline = simdsim_sweep::Scenario::new("inline-demo", "one cell")
        .kernels(["idct"])
        .exts([simdsim_isa::Ext::Vmmx128])
        .ways([2]);
    let id = c
        .submit(&SweepRequest::inline(inline))
        .expect("inline submit")
        .id;
    let doc = wait_done(&mut c, id);
    assert_eq!(doc.result.expect("result").cells.len(), 1);

    // Occupy the single worker with a real simulation, then flood the
    // 2-slot queue with *distinct* submissions (identical ones would
    // coalesce instead of queueing); at least one must be rejected with
    // a typed queue_full 503.
    let blocker = c
        .submit(&SweepRequest::by_name("fig4").filter("/idct/"))
        .expect("blocker submit")
        .id;
    let mut rejected = 0;
    for i in 0..32 {
        let request = SweepRequest::by_name("fig4").filter(format!("/no-such-cell-{i}/"));
        match c.submit(&request) {
            Ok(_) => {}
            Err(ClientError::Api { status, error }) => {
                assert_eq!(status, 503, "{error}");
                assert_eq!(error.code, ErrorCode::QueueFull);
                rejected += 1;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(rejected > 0, "a 2-slot queue must reject a 32-post flood");

    // Drain everything before shutdown so worker joins promptly.
    let _ = c
        .wait_timeout(blocker, POLL, TIMEOUT)
        .expect("blocker finishes");
    server.shutdown();
}
