//! Regenerators for the paper's configuration tables (I–IV).

use simdsim_kernels::registry;
use simdsim_mem::MemConfig;
use simdsim_pipe::PipeConfig;
use simdsim_rf::Table1Row;

/// Table I: register-file scaling (see [`simdsim_rf`]).
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    simdsim_rf::table1()
}

/// One row of Table II (benchmark set description).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application the kernel belongs to.
    pub app: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Kernel description.
    pub description: &'static str,
    /// Data size column.
    pub data_size: &'static str,
}

/// Table II: the benchmark set.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    registry()
        .iter()
        .map(|k| {
            let s = k.spec();
            Table2Row {
                app: s.app,
                kernel: s.name,
                description: s.description,
                data_size: s.data_size,
            }
        })
        .collect()
}

/// Table III: the twelve modelled processors — exactly the configuration
/// set of the Figure-5 scenario, so the table and the sweeps can never
/// disagree about what machines the reproduction models.
#[must_use]
pub fn table3() -> Vec<PipeConfig> {
    simdsim_sweep::catalog::fig5()
        .configs()
        .expect("the paper scenario resolves on paper configurations")
}

/// Table IV: the memory hierarchies (MMX and VMMX flavours per width).
#[must_use]
pub fn table4() -> Vec<(usize, bool, MemConfig)> {
    let mut rows = Vec::new();
    for way in crate::WAYS {
        for matrix in [false, true] {
            rows.push((way, matrix, MemConfig::paper(way, matrix)));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_paper_shapes() {
        assert_eq!(table1().len(), 8);
        assert_eq!(table2().len(), 11); // 10 kernels of Table II + fdct under jpegenc and mpeg2*
        assert_eq!(table3().len(), 12);
        assert_eq!(table4().len(), 6);
    }

    #[test]
    fn table2_contains_every_paper_kernel() {
        let t = table2();
        for name in [
            "rgb", "fdct", "h2v2", "ycc", "motion1", "motion2", "idct", "comp", "addblock",
            "ltppar", "ltpfilt",
        ] {
            assert!(t.iter().any(|r| r.kernel == name), "missing {name}");
        }
    }
}
