//! Experiment drivers: one function per figure of the paper.

use crate::INSTR_LIMIT;
use serde::{Deserialize, Serialize};
use simdsim_isa::{ClassCounts, Ext};
use simdsim_kernels::{registry, Variant};
use simdsim_pipe::{simulate, PipeConfig, PipeStats};

/// Result of simulating one kernel on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelResult {
    /// Kernel name.
    pub kernel: String,
    /// Extension.
    pub ext: String,
    /// Processor width.
    pub way: usize,
    /// Execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Speed-up over the same-width MMX64 baseline (filled by the driver).
    pub speedup: f64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// Figure 4: all kernels × four extensions on the 2-way core, speed-ups
/// relative to 2-way MMX64.
#[must_use]
pub fn fig4() -> Vec<KernelResult> {
    fig4_at_way(2)
}

/// Figure-4-style kernel sweep at an arbitrary width (the paper shows
/// 2-way; wider cores are useful for ablations).
#[must_use]
pub fn fig4_at_way(way: usize) -> Vec<KernelResult> {
    let mut rows = Vec::new();
    let kernels = registry();
    let results: Vec<Vec<(Ext, u64, u64, f64)>> = run_parallel(&kernels, |k| {
        let mut per_ext = Vec::new();
        for ext in Ext::ALL {
            let built = k.build(Variant::for_ext(ext));
            let cfg = PipeConfig::paper(way, ext);
            let (_, stats) =
                simulate(&built.program, &built.machine, &cfg, INSTR_LIMIT).expect("kernel runs");
            per_ext.push((ext, stats.cycles, stats.instrs, stats.ipc()));
        }
        per_ext
    });
    for (k, per_ext) in kernels.iter().zip(results) {
        let base = per_ext
            .iter()
            .find(|(e, ..)| *e == Ext::Mmx64)
            .expect("baseline present")
            .1;
        for (ext, cycles, instrs, ipc) in per_ext {
            rows.push(KernelResult {
                kernel: k.spec().name.to_owned(),
                ext: ext.name().to_owned(),
                way,
                cycles,
                instrs,
                speedup: base as f64 / cycles as f64,
                ipc,
            });
        }
    }
    rows
}

/// Result of simulating one application on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppResult {
    /// Application name.
    pub app: String,
    /// Extension.
    pub ext: String,
    /// Processor width.
    pub way: usize,
    /// Execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Cycles attributed to vectorised kernel regions.
    pub vector_cycles: u64,
    /// Cycles attributed to scalar application code.
    pub scalar_cycles: u64,
    /// Dynamic instruction mix.
    pub counts: ClassCounts,
    /// Speed-up over 2-way MMX64 of the same application.
    pub speedup: f64,
}

/// Figure 5 (plus the data behind Figures 6 and 7): every application on
/// every extension × width, speed-ups normalized to the application's
/// 2-way MMX64 run.
#[must_use]
pub fn fig5() -> Vec<AppResult> {
    let apps = simdsim_apps::registry();
    let jobs: Vec<(usize, Ext)> = crate::WAYS
        .iter()
        .flat_map(|w| Ext::ALL.iter().map(move |e| (*w, *e)))
        .collect();

    let mut rows = Vec::new();
    let all: Vec<Vec<(usize, Ext, PipeStats)>> = run_parallel(&apps, |app| {
        jobs.iter()
            .map(|(way, ext)| {
                let built = app.build(Variant::for_ext(*ext));
                let cfg = PipeConfig::paper(*way, *ext);
                let (_, stats) =
                    simulate(&built.program, &built.machine, &cfg, INSTR_LIMIT).expect("app runs");
                (*way, *ext, stats)
            })
            .collect()
    });
    for (app, results) in apps.iter().zip(all) {
        let base = results
            .iter()
            .find(|(w, e, _)| *w == 2 && *e == Ext::Mmx64)
            .expect("baseline present")
            .2
            .cycles;
        for (way, ext, stats) in results {
            rows.push(AppResult {
                app: app.spec().name.to_owned(),
                ext: ext.name().to_owned(),
                way,
                cycles: stats.cycles,
                instrs: stats.instrs,
                vector_cycles: stats.vector_region_cycles,
                scalar_cycles: stats.scalar_region_cycles,
                counts: stats.counts,
                speedup: base as f64 / stats.cycles as f64,
            });
        }
    }
    rows
}

/// Figure 6: the jpegdec cycle breakdown (vector vs scalar cycles),
/// normalized to the 2-way MMX64 total.  Returns the relevant subset of
/// [`fig5`] rows.
#[must_use]
pub fn fig6(rows: &[AppResult]) -> Vec<AppResult> {
    rows.iter()
        .filter(|r| r.app == "jpegdec")
        .cloned()
        .collect()
}

/// Figure 7: dynamic instruction mix per application × extension,
/// normalized to MMX64 (instruction counts do not depend on width, so the
/// 2-way rows are used).
#[must_use]
pub fn fig7(rows: &[AppResult]) -> Vec<AppResult> {
    rows.iter().filter(|r| r.way == 2).cloned().collect()
}

/// Runs a closure over every item on a scoped thread per item
/// (simulations are independent and CPU-bound).
fn run_parallel<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (item, slot) in items.iter().zip(out.iter_mut()) {
            let f = &f;
            handles.push(s.spawn(move || {
                *slot = Some(f(item));
            }));
        }
        for h in handles {
            h.join().expect("simulation thread panicked");
        }
    });
    out.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_has_all_cells() {
        // Smoke-test on the real driver is exercised by integration tests
        // and the bench harness; here check the row structure only for a
        // single cheap kernel.
        let rows = fig4();
        assert_eq!(rows.len(), registry().len() * 4);
        for r in &rows {
            assert!(
                r.speedup > 0.05,
                "{}-{} speedup {}",
                r.kernel,
                r.ext,
                r.speedup
            );
        }
        // Baselines are exactly 1.
        for r in rows.iter().filter(|r| r.ext == "mmx64") {
            assert!((r.speedup - 1.0).abs() < 1e-9);
        }
    }
}
