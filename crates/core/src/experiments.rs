//! Experiment drivers: one function per figure of the paper.
//!
//! The heavy lifting lives in [`simdsim_sweep`]: each figure is a
//! declarative scenario from [`simdsim_sweep::catalog`], executed by the
//! engine (bounded work-stealing pool, optional content-addressed cache),
//! and assembled into figure rows here.  The `try_` variants propagate a
//! failing cell as a [`SweepError`] naming that cell; the plain variants
//! keep the seed's infallible signatures for callers that treat a failure
//! as a bug.

use serde::{Deserialize, Serialize};
use simdsim_isa::{ClassCounts, Ext};
use simdsim_sweep::{catalog, Cell, CellStats, EngineOptions, SweepError, SweepReport};

/// Result of simulating one kernel on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelResult {
    /// Kernel name.
    pub kernel: String,
    /// Extension.
    pub ext: String,
    /// Processor width.
    pub way: usize,
    /// Execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Speed-up over the same-width MMX64 baseline (filled by the driver).
    pub speedup: f64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// Figure 4: all kernels × four extensions on the 2-way core, speed-ups
/// relative to 2-way MMX64.
#[must_use]
pub fn fig4() -> Vec<KernelResult> {
    fig4_at_way(2)
}

/// Figure-4-style kernel sweep at an arbitrary width (the paper shows
/// 2-way; wider cores are useful for ablations).
#[must_use]
pub fn fig4_at_way(way: usize) -> Vec<KernelResult> {
    try_fig4_at_way(way).unwrap_or_else(|e| panic!("figure 4 sweep: {e}"))
}

/// Fallible [`fig4`]: a failing cell comes back as an error naming it.
///
/// # Errors
///
/// Returns the first failing cell's [`SweepError`].
pub fn try_fig4() -> Result<Vec<KernelResult>, SweepError> {
    try_fig4_at_way(2)
}

/// Fallible [`fig4_at_way`].
///
/// # Errors
///
/// Returns the first failing cell's [`SweepError`].
pub fn try_fig4_at_way(way: usize) -> Result<Vec<KernelResult>, SweepError> {
    let report = simdsim_sweep::run(&catalog::fig4_at_way(way), &EngineOptions::default());
    fig4_rows(&report)
}

/// Assembles Figure-4 rows from any report of a Figure-4-shaped sweep
/// (kernels × extensions; the same-width MMX64 cell is the baseline).
/// Useful when the report came from a cached or filtered engine run.
///
/// # Errors
///
/// Returns the first failing cell, or an error for a cell whose MMX64
/// baseline is missing from the sweep.
pub fn fig4_rows(report: &SweepReport) -> Result<Vec<KernelResult>, SweepError> {
    let mut rows = Vec::new();
    for (kernel, group) in group_by_workload(report)? {
        for (cell, stats) in &group {
            let base = baseline(&group, cell, Ext::Mmx64, cell.way)?;
            rows.push(KernelResult {
                kernel: kernel.clone(),
                ext: cell.ext.name().to_owned(),
                way: cell.way,
                cycles: stats.cycles,
                instrs: stats.instrs,
                speedup: base as f64 / stats.cycles as f64,
                ipc: stats.ipc,
            });
        }
    }
    Ok(rows)
}

/// Result of simulating one application on one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppResult {
    /// Application name.
    pub app: String,
    /// Extension.
    pub ext: String,
    /// Processor width.
    pub way: usize,
    /// Execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Cycles attributed to vectorised kernel regions.
    pub vector_cycles: u64,
    /// Cycles attributed to scalar application code.
    pub scalar_cycles: u64,
    /// Dynamic instruction mix.
    pub counts: ClassCounts,
    /// Speed-up over 2-way MMX64 of the same application.
    pub speedup: f64,
}

/// Figure 5 (plus the data behind Figures 6 and 7): every application on
/// every extension × width, speed-ups normalized to the application's
/// 2-way MMX64 run.
#[must_use]
pub fn fig5() -> Vec<AppResult> {
    try_fig5().unwrap_or_else(|e| panic!("figure 5 sweep: {e}"))
}

/// Fallible [`fig5`]: a failing cell comes back as an error naming it.
///
/// # Errors
///
/// Returns the first failing cell's [`SweepError`].
pub fn try_fig5() -> Result<Vec<AppResult>, SweepError> {
    let report = simdsim_sweep::run(&catalog::fig5(), &EngineOptions::default());
    fig5_rows(&report)
}

/// Assembles Figure-5 rows from any report of a Figure-5-shaped sweep
/// (apps × widths × extensions; the 2-way MMX64 cell is the baseline).
///
/// # Errors
///
/// Returns the first failing cell, or an error for a cell whose 2-way
/// MMX64 baseline is missing from the sweep.
pub fn fig5_rows(report: &SweepReport) -> Result<Vec<AppResult>, SweepError> {
    let mut rows = Vec::new();
    for (app, group) in group_by_workload(report)? {
        for (cell, stats) in &group {
            let base = baseline(&group, cell, Ext::Mmx64, 2)?;
            rows.push(AppResult {
                app: app.clone(),
                ext: cell.ext.name().to_owned(),
                way: cell.way,
                cycles: stats.cycles,
                instrs: stats.instrs,
                vector_cycles: stats.vector_cycles,
                scalar_cycles: stats.scalar_cycles,
                counts: stats.counts,
                speedup: base as f64 / stats.cycles as f64,
            });
        }
    }
    Ok(rows)
}

/// Figure 6: the jpegdec cycle breakdown (vector vs scalar cycles),
/// normalized to the 2-way MMX64 total.  Returns the relevant subset of
/// [`fig5`] rows.
#[must_use]
pub fn fig6(rows: &[AppResult]) -> Vec<AppResult> {
    rows.iter()
        .filter(|r| r.app == "jpegdec")
        .cloned()
        .collect()
}

/// Figure 7: dynamic instruction mix per application × extension,
/// normalized to MMX64 (instruction counts do not depend on width, so the
/// 2-way rows are used).
#[must_use]
pub fn fig7(rows: &[AppResult]) -> Vec<AppResult> {
    rows.iter().filter(|r| r.way == 2).cloned().collect()
}

type Group<'a> = Vec<(&'a Cell, &'a CellStats)>;

/// Splits a report into per-workload groups, preserving expansion order
/// (cells of one workload are contiguous in [`simdsim_sweep::Scenario::expand`]
/// order, but grouping by name keeps this robust to filtered reports).
fn group_by_workload(report: &SweepReport) -> Result<Vec<(String, Group<'_>)>, SweepError> {
    let mut groups: Vec<(String, Group<'_>)> = Vec::new();
    for (cell, stats) in report.cells()? {
        match groups.iter_mut().find(|(n, _)| n == cell.workload.name()) {
            Some((_, g)) => g.push((cell, stats)),
            None => groups.push((cell.workload.name().to_owned(), vec![(cell, stats)])),
        }
    }
    Ok(groups)
}

/// The baseline cycle count for `cell`'s group: the `(ext, way)` cell.
fn baseline(group: &Group<'_>, cell: &Cell, ext: Ext, way: usize) -> Result<u64, SweepError> {
    group
        .iter()
        .find(|(c, _)| c.ext == ext && c.way == way)
        .map(|(_, s)| s.cycles)
        .ok_or_else(|| SweepError {
            cell: cell.label(),
            message: format!("no {way}way-{ext} baseline cell in the sweep"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_kernels::registry;
    use simdsim_sweep::Scenario;

    #[test]
    fn fig4_has_all_cells() {
        // Smoke-test on the real driver is exercised by integration tests
        // and the bench harness; here check the row structure only for a
        // single cheap kernel.
        let rows = fig4();
        assert_eq!(rows.len(), registry().len() * 4);
        for r in &rows {
            assert!(
                r.speedup > 0.05,
                "{}-{} speedup {}",
                r.kernel,
                r.ext,
                r.speedup
            );
        }
        // Baselines are exactly 1.
        for r in rows.iter().filter(|r| r.ext == "mmx64") {
            assert!((r.speedup - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn failing_cell_surfaces_its_label_not_a_panic() {
        let scenario = Scenario::new("broken", "unknown kernel")
            .kernels(["no-such-kernel"])
            .exts([Ext::Mmx64])
            .ways([2]);
        let report = simdsim_sweep::run(&scenario, &EngineOptions::default());
        let err = fig4_rows(&report).unwrap_err();
        assert!(err.cell.contains("no-such-kernel"), "{err}");
        assert!(err.message.contains("unknown kernel"), "{err}");
    }

    #[test]
    fn missing_baseline_is_an_error() {
        // A sweep without the MMX64 column cannot be normalized.
        let scenario = Scenario::new("nobase", "vmmx only")
            .kernels(["idct"])
            .exts([Ext::Vmmx128])
            .ways([2])
            .instr_limit(simdsim_sweep::DEFAULT_INSTR_LIMIT);
        let report = simdsim_sweep::run(&scenario, &EngineOptions::default());
        let err = fig4_rows(&report).unwrap_err();
        assert!(err.message.contains("baseline"), "{err}");
    }
}
