//! Ablation studies over the design choices the paper argues about:
//! vector lanes, L2 vector-port bandwidth, matrix register-file size and
//! branch-redirect cost.  These are not paper figures; they decompose
//! *why* the matrix architecture wins (and where it stops winning).
//!
//! Each study is a declarative scenario from [`simdsim_sweep::catalog`]
//! with a single-parameter override axis; [`rows`] runs any such scenario
//! through the engine and normalizes each workload to its first setting.

use serde::{Deserialize, Serialize};
use simdsim_sweep::{catalog, EngineOptions, Scenario, SweepError};

/// One ablation measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Parameter under study.
    pub parameter: String,
    /// The value simulated.
    pub setting: String,
    /// Workload name.
    pub workload: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Speed-up relative to the sweep's first setting.
    pub speedup: f64,
}

/// [`rows_with`] on default engine options (in-process, uncached).
///
/// # Errors
///
/// Returns the first failing cell's [`SweepError`].
pub fn rows(scenario: &Scenario) -> Result<Vec<AblationRow>, SweepError> {
    rows_with(scenario, &EngineOptions::default())
}

/// Runs an override-axis scenario and renders each cell as an
/// [`AblationRow`], normalized to the workload's first setting.  Works
/// for any user-defined scenario shaped like the catalog's `ablate-*`
/// entries (one override parameter per set); pass cache-enabled options
/// to share results with the `sweep` binary.
///
/// # Errors
///
/// Returns the first failing cell's [`SweepError`].
pub fn rows_with(
    scenario: &Scenario,
    opts: &EngineOptions,
) -> Result<Vec<AblationRow>, SweepError> {
    let report = simdsim_sweep::run(scenario, opts);
    let mut out = Vec::new();
    // Cells arrive workload-major with settings in axis order, so the
    // first cell of each workload is its normalization baseline.
    let mut base: Option<(String, u64)> = None;
    for (cell, stats) in report.cells()? {
        let workload = cell.workload.name().to_owned();
        let b = match &base {
            Some((w, b)) if *w == workload => *b,
            _ => {
                base = Some((workload.clone(), stats.cycles));
                stats.cycles
            }
        };
        let (parameter, setting) = cell.overrides.params.first().map_or_else(
            || (String::new(), String::new()),
            |p| (p.key.clone(), p.value.to_string()),
        );
        out.push(AblationRow {
            parameter,
            setting,
            workload,
            cycles: stats.cycles,
            speedup: b as f64 / stats.cycles as f64,
        });
    }
    Ok(out)
}

fn run_catalog(scenario: &Scenario) -> Vec<AblationRow> {
    rows(scenario).unwrap_or_else(|e| panic!("ablation {}: {e}", scenario.name))
}

/// Sweep the number of parallel vector lanes per SIMD unit on the 2-way
/// VMMX128 core.  The paper (Fig. 2): "by adding more parallel lanes MOM
/// can execute more operations of a vector instruction each cycle without
/// increasing the complexity of the register file."
#[must_use]
pub fn lanes() -> Vec<AblationRow> {
    run_catalog(&catalog::ablate_lanes())
}

/// Sweep the L2 vector-port width (the `B×64-bit` port of Table IV).
/// Separates compute-bound kernels from bandwidth-bound ones.
#[must_use]
pub fn l2_port_width() -> Vec<AblationRow> {
    run_catalog(&catalog::ablate_l2_port())
}

/// Sweep the physical matrix register count (Table III gives the VMMX
/// file only 20 physical registers at 2-way — 4 in-flight renames).
#[must_use]
pub fn matrix_registers() -> Vec<AblationRow> {
    run_catalog(&catalog::ablate_matrix_regs())
}

/// Sweep the branch-redirect penalty on the MMX64 baseline — scalar loop
/// overhead is where 1-D SIMD code spends its time, which is exactly what
/// the matrix ISA eliminates.
#[must_use]
pub fn redirect_penalty() -> Vec<AblationRow> {
    run_catalog(&catalog::ablate_redirect())
}

/// Renders ablation rows as a text table.
#[must_use]
pub fn render(rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<18} {:<9} {:<10} {:>12} {:>8}",
        "parameter", "setting", "workload", "cycles", "speedup"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<18} {:<9} {:<10} {:>12} {:>7.2}x",
            r.parameter, r.setting, r.workload, r.cycles, r.speedup
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_lanes_never_hurt_and_saturate() {
        let rows = lanes();
        for w in ["idct", "motion1"] {
            let per: Vec<&AblationRow> = rows.iter().filter(|r| r.workload == w).collect();
            // Monotone non-decreasing speed-up with lane count…
            for pair in per.windows(2) {
                assert!(
                    pair[1].speedup >= pair[0].speedup * 0.98,
                    "{w}: lanes {} -> {} regressed",
                    pair[0].setting,
                    pair[1].setting
                );
            }
            // …but with diminishing returns: 16 lanes gains <15% over 8
            // (VL is at most 16 — the paper's "limit for including more
            // lanes is the vector length").
            let s8 = per.iter().find(|r| r.setting == "8").unwrap().speedup;
            let s16 = per.iter().find(|r| r.setting == "16").unwrap().speedup;
            assert!(s16 / s8 < 1.15, "{w}: 8→16 lanes still scaling");
        }
    }

    #[test]
    fn rename_stalls_appear_below_paper_sizing() {
        let rows = matrix_registers();
        for w in ["idct", "motion2"] {
            let per: Vec<&AblationRow> = rows.iter().filter(|r| r.workload == w).collect();
            let tiny = per.iter().find(|r| r.setting == "17").unwrap().cycles;
            let paper = per.iter().find(|r| r.setting == "20").unwrap().cycles;
            let big = per.iter().find(|r| r.setting == "64").unwrap().cycles;
            assert!(
                tiny >= paper,
                "{w}: fewer physical registers can't be faster"
            );
            assert!(paper >= big, "{w}: more physical registers can't be slower");
        }
    }
}
