//! Ablation studies over the design choices the paper argues about:
//! vector lanes, L2 vector-port bandwidth, matrix register-file size and
//! branch-redirect cost.  These are not paper figures; they decompose
//! *why* the matrix architecture wins (and where it stops winning).

use crate::INSTR_LIMIT;
use serde::{Deserialize, Serialize};
use simdsim_isa::Ext;
use simdsim_kernels::{by_name, Variant};
use simdsim_pipe::{simulate, PipeConfig};

/// One ablation measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Parameter under study.
    pub parameter: String,
    /// The value simulated.
    pub setting: String,
    /// Workload name.
    pub workload: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Speed-up relative to the sweep's first setting.
    pub speedup: f64,
}

fn sweep<T: std::fmt::Display + Copy>(
    parameter: &str,
    kernels: &[&str],
    settings: &[T],
    mut configure: impl FnMut(&mut PipeConfig, T),
    ext: Ext,
) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for name in kernels {
        let kernel = by_name(name).unwrap_or_else(|| panic!("kernel {name}"));
        let built = kernel.build(Variant::for_ext(ext));
        let mut base = None;
        for s in settings {
            let mut cfg = PipeConfig::paper(2, ext);
            configure(&mut cfg, *s);
            let (_, t) =
                simulate(&built.program, &built.machine, &cfg, INSTR_LIMIT).expect("simulates");
            let b = *base.get_or_insert(t.cycles);
            rows.push(AblationRow {
                parameter: parameter.to_owned(),
                setting: s.to_string(),
                workload: (*name).to_owned(),
                cycles: t.cycles,
                speedup: b as f64 / t.cycles as f64,
            });
        }
    }
    rows
}

/// Sweep the number of parallel vector lanes per SIMD unit on the 2-way
/// VMMX128 core.  The paper (Fig. 2): "by adding more parallel lanes MOM
/// can execute more operations of a vector instruction each cycle without
/// increasing the complexity of the register file."
#[must_use]
pub fn lanes() -> Vec<AblationRow> {
    sweep(
        "lanes",
        &["idct", "motion1", "ycc", "h2v2"],
        &[1usize, 2, 4, 8, 16],
        |cfg, lanes| cfg.lanes = lanes,
        Ext::Vmmx128,
    )
}

/// Sweep the L2 vector-port width (the `B×64-bit` port of Table IV).
/// Separates compute-bound kernels from bandwidth-bound ones.
#[must_use]
pub fn l2_port_width() -> Vec<AblationRow> {
    sweep(
        "l2-port-bytes",
        &["motion1", "ycc", "ltpfilt"],
        &[8usize, 16, 32, 64],
        |cfg, width| cfg.mem.l2.port_width = width,
        Ext::Vmmx128,
    )
}

/// Sweep the physical matrix register count (Table III gives the VMMX
/// file only 20 physical registers at 2-way — 4 in-flight renames).
#[must_use]
pub fn matrix_registers() -> Vec<AblationRow> {
    sweep(
        "phys-matrix-regs",
        &["idct", "rgb", "motion2"],
        &[17usize, 18, 20, 24, 36, 64],
        |cfg, n| cfg.phys_simd = n,
        Ext::Vmmx128,
    )
}

/// Sweep the branch-redirect penalty on the MMX64 baseline — scalar loop
/// overhead is where 1-D SIMD code spends its time, which is exactly what
/// the matrix ISA eliminates.
#[must_use]
pub fn redirect_penalty() -> Vec<AblationRow> {
    sweep(
        "redirect-penalty",
        &["motion1", "addblock"],
        &[1u64, 3, 5, 10, 20],
        |cfg, p| cfg.redirect_penalty = p,
        Ext::Mmx64,
    )
}

/// Renders ablation rows as a text table.
#[must_use]
pub fn render(rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<18} {:<9} {:<10} {:>12} {:>8}",
        "parameter", "setting", "workload", "cycles", "speedup"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<18} {:<9} {:<10} {:>12} {:>7.2}x",
            r.parameter, r.setting, r.workload, r.cycles, r.speedup
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_lanes_never_hurt_and_saturate() {
        let rows = lanes();
        for w in ["idct", "motion1"] {
            let per: Vec<&AblationRow> = rows.iter().filter(|r| r.workload == w).collect();
            // Monotone non-decreasing speed-up with lane count…
            for pair in per.windows(2) {
                assert!(
                    pair[1].speedup >= pair[0].speedup * 0.98,
                    "{w}: lanes {} -> {} regressed",
                    pair[0].setting,
                    pair[1].setting
                );
            }
            // …but with diminishing returns: 16 lanes gains <15% over 8
            // (VL is at most 16 — the paper's "limit for including more
            // lanes is the vector length").
            let s8 = per.iter().find(|r| r.setting == "8").unwrap().speedup;
            let s16 = per.iter().find(|r| r.setting == "16").unwrap().speedup;
            assert!(s16 / s8 < 1.15, "{w}: 8→16 lanes still scaling");
        }
    }

    #[test]
    fn rename_stalls_appear_below_paper_sizing() {
        let rows = matrix_registers();
        for w in ["idct", "motion2"] {
            let per: Vec<&AblationRow> = rows.iter().filter(|r| r.workload == w).collect();
            let tiny = per.iter().find(|r| r.setting == "17").unwrap().cycles;
            let paper = per.iter().find(|r| r.setting == "20").unwrap().cycles;
            let big = per.iter().find(|r| r.setting == "64").unwrap().cycles;
            assert!(
                tiny >= paper,
                "{w}: fewer physical registers can't be faster"
            );
            assert!(paper >= big, "{w}: more physical registers can't be slower");
        }
    }
}
