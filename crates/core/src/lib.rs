//! `simdsim` — a reproduction of *"On the Scalability of 1- and
//! 2-Dimensional SIMD Extensions for Multimedia Applications"*
//! (ISPASS 2005).
//!
//! This facade crate wires the workspace together and exposes one entry
//! point per experiment of the paper:
//!
//! | item | paper artefact | function |
//! |---|---|---|
//! | Table I   | register-file scaling | [`tables::table1`] |
//! | Table II  | benchmark set | [`tables::table2`] |
//! | Table III | processor models | [`tables::table3`] |
//! | Table IV  | memory hierarchy | [`tables::table4`] |
//! | Figure 4  | kernel speed-ups (2-way) | [`experiments::fig4`] |
//! | Figure 5  | application speed-ups (2/4/8-way) | [`experiments::fig5`] |
//! | Figure 6  | cycle breakdown (jpegdec) | [`experiments::fig6`] |
//! | Figure 7  | dynamic instruction mix | [`experiments::fig7`] |
//!
//! Each figure driver is a declarative scenario executed by the
//! [`sweep`] engine (`simdsim-sweep`), which owns scheduling and the
//! content-addressed result cache; custom machines and sweeps are new
//! [`sweep::Scenario`] values rather than new driver code.
//!
//! # Quickstart
//!
//! ```no_run
//! // Reproduce the paper's Figure 4 (kernel speed-ups over 2-way MMX64):
//! let rows = simdsim::experiments::fig4();
//! println!("{}", simdsim::report::render_fig4(&rows));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod report;
pub mod tables;

pub use simdsim_api as api;
pub use simdsim_asm as asm;
pub use simdsim_client as client;
pub use simdsim_conform as conform;
pub use simdsim_emu as emu;
pub use simdsim_isa as isa;
pub use simdsim_kernels as kernels;
pub use simdsim_mem as mem;
pub use simdsim_pipe as pipe;
pub use simdsim_rf as rf;
pub use simdsim_serve as serve;
pub use simdsim_sweep as sweep;

/// The three processor widths evaluated in the paper.
pub const WAYS: [usize; 3] = simdsim_sweep::catalog::PAPER_WAYS;

/// Dynamic-instruction budget for a single simulated workload.
pub const INSTR_LIMIT: u64 = simdsim_sweep::DEFAULT_INSTR_LIMIT;
