//! Plain-text rendering of the regenerated tables and figures, matching
//! the layout of the paper's artefacts, plus JSON export.

use crate::experiments::{AppResult, KernelResult};
use crate::tables::{table4, Table2Row};
use simdsim_isa::{Class, Ext};
use simdsim_rf::Table1Row;
use std::fmt::Write as _;

const EXT_ORDER: [&str; 4] = ["mmx64", "mmx128", "vmmx64", "vmmx128"];

/// Renders Table I (register-file scaling).
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<14} {:>7} {:>8} {:>5} {:>10} {:>6} {:>6} {:>11} {:>9} {:>9}",
        "config",
        "logical",
        "physical",
        "lanes",
        "banks/lane",
        "rports",
        "wports",
        "storage KB",
        "area",
        "paper"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>7} {:>8} {:>5} {:>10} {:>6} {:>6} {:>11.2} {:>8.2}X {:>8}",
            r.label,
            r.logical,
            r.physical,
            r.lanes,
            r.banks_per_lane,
            r.read_ports,
            r.write_ports,
            r.storage_kb,
            r.rel_area,
            r.paper_rel_area
                .map_or_else(|| "-".into(), |v| format!("{v:.2}X")),
        );
    }
    s
}

/// Renders Table II (benchmark set).
#[must_use]
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<10} {:<42} data size",
        "app", "kernel", "description"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:<10} {:<42} {}",
            r.app, r.kernel, r.description, r.data_size
        );
    }
    s
}

/// Renders Table III (processor models).
#[must_use]
pub fn render_table3(rows: &[simdsim_pipe::PipeConfig]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<14} {:>9} {:>4} {:>4} {:>7} {:>8} {:>8} {:>6} {:>8} {:>8}",
        "config",
        "phys-simd",
        "rob",
        "iq",
        "int-fus",
        "fp-fus",
        "simd-iss",
        "lanes",
        "mem-fus",
        "l2-port"
    );
    for c in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>9} {:>4} {:>4} {:>7} {:>8} {:>8} {:>6} {:>8} {:>7}B",
            c.label(),
            c.phys_simd,
            c.rob,
            c.iq,
            c.int_fus,
            c.fp_fus,
            c.simd_issue,
            c.lanes,
            c.mem_fus,
            c.mem.l2.port_width,
        );
    }
    s
}

/// Renders Table IV (memory hierarchy).
#[must_use]
pub fn render_table4() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<6} {:<6} {:>8} {:>9} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "way", "kind", "l1-size", "l1-ports", "l1-lat", "l2-size", "l2-width", "l2-lat", "mem-lat"
    );
    for (way, matrix, m) in table4() {
        let _ = writeln!(
            s,
            "{:<6} {:<6} {:>7}K {:>9} {:>8} {:>7}K {:>8}B {:>8} {:>8}",
            way,
            if matrix { "vmmx" } else { "mmx" },
            m.l1.size / 1024,
            m.l1.ports,
            m.l1.latency,
            m.l2.size / 1024,
            m.l2.port_width,
            m.l2.latency,
            m.mem_latency,
        );
    }
    s
}

/// Renders Figure 4 (kernel speed-ups over same-width MMX64).
#[must_use]
pub fn render_fig4(rows: &[KernelResult]) -> String {
    let mut s = String::new();
    let mut kernels: Vec<String> = rows.iter().map(|r| r.kernel.clone()).collect();
    kernels.dedup();
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "mmx64", "mmx128", "vmmx64", "vmmx128"
    );
    for k in &kernels {
        let get = |e: &str| {
            rows.iter()
                .find(|r| &r.kernel == k && r.ext == e)
                .map_or(f64::NAN, |r| r.speedup)
        };
        let _ = writeln!(
            s,
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            k,
            get("mmx64"),
            get("mmx128"),
            get("vmmx64"),
            get("vmmx128")
        );
    }
    s
}

/// Renders Figure 5 (application speed-ups over 2-way MMX64).
#[must_use]
pub fn render_fig5(rows: &[AppResult]) -> String {
    let mut s = String::new();
    let mut apps: Vec<String> = rows.iter().map(|r| r.app.clone()).collect();
    apps.dedup();
    let _ = writeln!(
        s,
        "{:<10} {:>4} {:>8} {:>8} {:>8} {:>8}",
        "app", "way", "mmx64", "mmx128", "vmmx64", "vmmx128"
    );
    let avg_cell = |way: usize, e: &str| {
        let vals: Vec<f64> = apps
            .iter()
            .filter_map(|a| {
                rows.iter()
                    .find(|r| &r.app == a && r.way == way && r.ext == e)
                    .map(|r| r.speedup)
            })
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    for app in &apps {
        for way in crate::WAYS {
            let get = |e: &str| {
                rows.iter()
                    .find(|r| &r.app == app && r.way == way && r.ext == e)
                    .map_or(f64::NAN, |r| r.speedup)
            };
            let _ = writeln!(
                s,
                "{:<10} {:>4} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                app,
                way,
                get("mmx64"),
                get("mmx128"),
                get("vmmx64"),
                get("vmmx128")
            );
        }
    }
    for way in crate::WAYS {
        let _ = writeln!(
            s,
            "{:<10} {:>4} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            "average",
            way,
            avg_cell(way, "mmx64"),
            avg_cell(way, "mmx128"),
            avg_cell(way, "vmmx64"),
            avg_cell(way, "vmmx128")
        );
    }
    s
}

/// Renders Figure 6 (jpegdec cycle breakdown, normalized to 2-way MMX64).
#[must_use]
pub fn render_fig6(rows: &[AppResult]) -> String {
    let base = rows
        .iter()
        .find(|r| r.way == 2 && r.ext == "mmx64")
        .map_or(1, |r| r.cycles) as f64;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<6} {:<9} {:>9} {:>9} {:>9} {:>7}",
        "way", "ext", "vector%", "scalar%", "total%", "vec/tot"
    );
    for way in crate::WAYS {
        for ext in EXT_ORDER {
            if let Some(r) = rows.iter().find(|r| r.way == way && r.ext == ext) {
                let v = r.vector_cycles as f64 / base * 100.0;
                let sc = r.scalar_cycles as f64 / base * 100.0;
                let _ = writeln!(
                    s,
                    "{:<6} {:<9} {:>8.1} {:>8.1} {:>8.1} {:>6.1}%",
                    way,
                    ext,
                    v,
                    sc,
                    v + sc,
                    r.vector_cycles as f64 / (r.vector_cycles + r.scalar_cycles) as f64 * 100.0,
                );
            }
        }
    }
    s
}

/// Renders Figure 7 (dynamic instruction mix, normalized to MMX64).
#[must_use]
pub fn render_fig7(rows: &[AppResult]) -> String {
    let mut s = String::new();
    let mut apps: Vec<String> = rows.iter().map(|r| r.app.clone()).collect();
    apps.dedup();
    let _ = writeln!(
        s,
        "{:<10} {:<9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "ext", "varith", "vmem", "sctrl", "sarith", "smem", "total"
    );
    for app in &apps {
        let base = rows
            .iter()
            .find(|r| &r.app == app && r.ext == "mmx64")
            .map_or(1, |r| r.counts.total()) as f64;
        for ext in EXT_ORDER {
            if let Some(r) = rows.iter().find(|r| &r.app == app && r.ext == ext) {
                let pct = |c: Class| r.counts.get(c) as f64 / base * 100.0;
                let _ = writeln!(
                    s,
                    "{:<10} {:<9} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                    app,
                    ext,
                    pct(Class::VArith),
                    pct(Class::VMem),
                    pct(Class::SCtrl),
                    pct(Class::SArith),
                    pct(Class::SMem),
                    r.counts.total() as f64 / base * 100.0,
                );
            }
        }
    }
    s
}

/// Serialises any experiment result set to pretty JSON.
///
/// # Panics
///
/// Panics if serialisation fails (it cannot for these types).
#[must_use]
pub fn to_json<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("serialisable experiment results")
}

/// Renders per-cell simulation throughput (wall time and simulated MIPS)
/// of one sweep run — the human-readable companion of the
/// `BENCH_simdsim.json` artifact.
#[must_use]
pub fn render_throughput(report: &simdsim_sweep::SweepReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<44} {:>12} {:>10} {:>8}",
        "cell", "instrs", "wall ms", "MIPS"
    );
    for o in &report.outcomes {
        match &o.stats {
            Ok(stats) if !o.cached => {
                let _ = writeln!(
                    s,
                    "{:<44} {:>12} {:>10.2} {:>8.1}",
                    o.cell.label(),
                    stats.instrs,
                    o.wall.as_secs_f64() * 1.0e3,
                    o.mips().unwrap_or(0.0)
                );
            }
            Ok(_) => {
                let _ = writeln!(s, "{:<44} (cached)", o.cell.label());
            }
            Err(e) => {
                let _ = writeln!(s, "{:<44} FAILED: {}", o.cell.label(), e.message);
            }
        }
    }
    if let Some(mips) = report.simulated_mips() {
        let _ = writeln!(
            s,
            "total: {:.2} s simulated wall, {mips:.1} MIPS",
            report.simulated_wall().as_secs_f64()
        );
    }
    s
}

/// Renders a `simdsim-serve` metrics snapshot as a human-readable table —
/// the plain-text companion of the `/metrics` Prometheus endpoint, used
/// by `loadgen --spawn` to summarise what the in-process server did.
#[must_use]
pub fn render_server_stats(s: &simdsim_serve::MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "server: {} requests ({} submit, {} status, {} errors), queue depth {}",
        s.requests_total(),
        s.requests_submit,
        s.requests_status,
        s.requests_errors,
        s.queue_depth,
    );
    let _ = writeln!(
        out,
        "jobs:   {} submitted ({} coalesced), {} completed, {} failed, {} cancelled, {} rejected",
        s.jobs_submitted,
        s.jobs_coalesced,
        s.jobs_completed,
        s.jobs_failed,
        s.jobs_cancelled,
        s.jobs_rejected,
    );
    let _ = writeln!(
        out,
        "cells:  {} cached, {} simulated ({:.1}% cache hits)",
        s.cells_cached,
        s.cells_simulated,
        s.cache_hit_ratio() * 100.0,
    );
    let _ = writeln!(
        out,
        "sim:    {} instrs in {:.2}s wall ({:.1} MIPS)",
        s.sim_instrs,
        s.sim_wall_seconds,
        s.simulated_mips(),
    );
    let _ = writeln!(
        out,
        "blocks: {} predecoded, {} fused hits, {} side exits",
        s.sim_blocks_cached, s.sim_block_hits, s.sim_side_exits,
    );
    out
}

/// The extension order used across reports.
#[must_use]
pub fn ext_order() -> [Ext; 4] {
    Ext::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderers_are_nonempty() {
        assert!(render_table1(&crate::tables::table1()).lines().count() == 9);
        assert!(render_table2(&crate::tables::table2()).contains("motion1"));
        assert!(render_table3(&crate::tables::table3()).contains("8way-vmmx128"));
        assert!(render_table4().contains("512K"));
    }

    #[test]
    fn fig_renderers_handle_empty() {
        assert!(render_fig4(&[]).contains("kernel"));
        assert!(render_fig6(&[]).contains("vector%"));
    }
}
