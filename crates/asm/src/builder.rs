//! The [`Asm`] program builder.

use crate::ralloc::RegPool;
use simdsim_isa::{
    AReg, AccOp, AluOp, Cond, Esz, FOp, FReg, IReg, Instr, MOperand, MReg, MemSz, Operand2,
    Program, Region, Sat, VLoc, VOp, VReg, VShiftOp,
};

/// A symbolic label, created by [`Asm::label`] and bound by [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Structured assembler building a resolved [`Program`].
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct Asm {
    code: Vec<Instr>,
    region: Vec<Region>,
    cur_region: Region,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, Label)>,
    iregs: RegPool,
    fregs: RegPool,
    vregs: RegPool,
    mregs: RegPool,
    aregs: RegPool,
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Number of argument registers (`r0`..`r7`) excluded from the scratch
    /// allocator.
    pub const NUM_ARG_REGS: u8 = 8;

    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            code: Vec::new(),
            region: Vec::new(),
            cur_region: Region::Scalar,
            labels: Vec::new(),
            patches: Vec::new(),
            iregs: RegPool::new(Self::NUM_ARG_REGS, simdsim_isa::NUM_IREGS as u8),
            fregs: RegPool::new(0, simdsim_isa::NUM_FREGS as u8),
            vregs: RegPool::new(0, simdsim_isa::NUM_VREGS as u8),
            mregs: RegPool::new(0, simdsim_isa::NUM_MREGS as u8),
            aregs: RegPool::new(0, simdsim_isa::NUM_AREGS as u8),
        }
    }

    // ------------------------------------------------------------------
    // Registers
    // ------------------------------------------------------------------

    /// Argument register `i` (`r0`..`r7`), set by the harness before a run.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn arg(&self, i: u8) -> IReg {
        assert!(i < Self::NUM_ARG_REGS, "argument registers are r0..r7");
        IReg::new(i)
    }

    /// Allocates a scratch integer register.
    pub fn ireg(&mut self) -> IReg {
        IReg::new(self.iregs.alloc())
    }
    /// Releases a scratch integer register.
    pub fn release_ireg(&mut self, r: IReg) {
        self.iregs.release(r.index() as u8);
    }
    /// Allocates a scratch floating-point register.
    pub fn freg(&mut self) -> FReg {
        FReg::new(self.fregs.alloc())
    }
    /// Releases a scratch floating-point register.
    pub fn release_freg(&mut self, r: FReg) {
        self.fregs.release(r.index() as u8);
    }
    /// Allocates a scratch SIMD register.
    pub fn vreg(&mut self) -> VReg {
        VReg::new(self.vregs.alloc())
    }
    /// Releases a scratch SIMD register.
    pub fn release_vreg(&mut self, r: VReg) {
        self.vregs.release(r.index() as u8);
    }
    /// Allocates a scratch matrix register.
    pub fn mreg(&mut self) -> MReg {
        MReg::new(self.mregs.alloc())
    }
    /// Releases a scratch matrix register.
    pub fn release_mreg(&mut self, r: MReg) {
        self.mregs.release(r.index() as u8);
    }
    /// Allocates a packed accumulator.
    pub fn areg(&mut self) -> AReg {
        AReg::new(self.aregs.alloc())
    }
    /// Releases a packed accumulator.
    pub fn release_areg(&mut self, r: AReg) {
        self.aregs.release(r.index() as u8);
    }

    // ------------------------------------------------------------------
    // Core emission, labels, regions
    // ------------------------------------------------------------------

    /// Appends a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.code.push(i);
        self.region.push(self.cur_region);
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u32);
    }

    /// Runs `body` with the current region set to [`Region::Vector`];
    /// instructions emitted inside are attributed to vectorised kernel code.
    pub fn vector_region<R>(&mut self, body: impl FnOnce(&mut Asm) -> R) -> R {
        let prev = self.cur_region;
        self.cur_region = Region::Vector;
        let r = body(self);
        self.cur_region = prev;
        r
    }

    /// Current instruction index (useful for size accounting in tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolves labels and returns the finished program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn finish(mut self) -> Program {
        for (at, label) in std::mem::take(&mut self.patches) {
            let target = self.labels[label.0 as usize].expect("unbound label referenced");
            match &mut self.code[at] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                other => unreachable!("patch site is not a branch: {other}"),
            }
        }
        Program::new(self.code, self.region)
    }

    // ------------------------------------------------------------------
    // Scalar integer emitters
    // ------------------------------------------------------------------

    /// `rd = imm`.
    pub fn li(&mut self, rd: IReg, imm: i64) {
        self.emit(Instr::Li { rd, imm });
    }
    /// `rd = rs` (register move).
    pub fn mv(&mut self, rd: IReg, rs: IReg) {
        self.alu(AluOp::Add, rd, rs, 0);
    }
    /// Generic ALU operation with register-or-immediate second operand.
    pub fn alu(&mut self, op: AluOp, rd: IReg, ra: IReg, b: impl Into<Operand2>) {
        self.emit(Instr::IntOp {
            op,
            rd,
            ra,
            b: b.into(),
        });
    }
    /// `rd = ra + rb`.
    pub fn add(&mut self, rd: IReg, ra: IReg, rb: IReg) {
        self.alu(AluOp::Add, rd, ra, rb);
    }
    /// `rd = ra + imm`.
    pub fn addi(&mut self, rd: IReg, ra: IReg, imm: i32) {
        self.alu(AluOp::Add, rd, ra, imm);
    }
    /// `rd = ra - rb`.
    pub fn sub(&mut self, rd: IReg, ra: IReg, rb: IReg) {
        self.alu(AluOp::Sub, rd, ra, rb);
    }
    /// `rd = ra - imm`.
    pub fn subi(&mut self, rd: IReg, ra: IReg, imm: i32) {
        self.alu(AluOp::Sub, rd, ra, imm);
    }
    /// `rd = ra * rb`.
    pub fn mul(&mut self, rd: IReg, ra: IReg, rb: IReg) {
        self.alu(AluOp::Mul, rd, ra, rb);
    }
    /// `rd = ra * imm`.
    pub fn muli(&mut self, rd: IReg, ra: IReg, imm: i32) {
        self.alu(AluOp::Mul, rd, ra, imm);
    }
    /// `rd = ra << imm`.
    pub fn slli(&mut self, rd: IReg, ra: IReg, imm: i32) {
        self.alu(AluOp::Sll, rd, ra, imm);
    }
    /// `rd = (u64)ra >> imm`.
    pub fn srli(&mut self, rd: IReg, ra: IReg, imm: i32) {
        self.alu(AluOp::Srl, rd, ra, imm);
    }
    /// `rd = ra >> imm` (arithmetic).
    pub fn srai(&mut self, rd: IReg, ra: IReg, imm: i32) {
        self.alu(AluOp::Sra, rd, ra, imm);
    }
    /// `rd = ra & b`.
    pub fn and(&mut self, rd: IReg, ra: IReg, b: impl Into<Operand2>) {
        self.alu(AluOp::And, rd, ra, b);
    }
    /// `rd = ra | b`.
    pub fn or(&mut self, rd: IReg, ra: IReg, b: impl Into<Operand2>) {
        self.alu(AluOp::Or, rd, ra, b);
    }
    /// `rd = ra ^ b`.
    pub fn xor(&mut self, rd: IReg, ra: IReg, b: impl Into<Operand2>) {
        self.alu(AluOp::Xor, rd, ra, b);
    }

    /// Scalar load.
    pub fn load(&mut self, sz: MemSz, sext: bool, rd: IReg, base: IReg, off: i32) {
        self.emit(Instr::Load {
            sz,
            sext,
            rd,
            base,
            off,
        });
    }
    /// Unsigned byte load.
    pub fn lbu(&mut self, rd: IReg, base: IReg, off: i32) {
        self.load(MemSz::B, false, rd, base, off);
    }
    /// Signed 16-bit load.
    pub fn lh(&mut self, rd: IReg, base: IReg, off: i32) {
        self.load(MemSz::H, true, rd, base, off);
    }
    /// Unsigned 16-bit load.
    pub fn lhu(&mut self, rd: IReg, base: IReg, off: i32) {
        self.load(MemSz::H, false, rd, base, off);
    }
    /// Signed 32-bit load.
    pub fn lw(&mut self, rd: IReg, base: IReg, off: i32) {
        self.load(MemSz::W, true, rd, base, off);
    }
    /// 64-bit load.
    pub fn ld(&mut self, rd: IReg, base: IReg, off: i32) {
        self.load(MemSz::D, true, rd, base, off);
    }
    /// Scalar store.
    pub fn store(&mut self, sz: MemSz, rs: IReg, base: IReg, off: i32) {
        self.emit(Instr::Store { sz, rs, base, off });
    }
    /// Byte store.
    pub fn sb(&mut self, rs: IReg, base: IReg, off: i32) {
        self.store(MemSz::B, rs, base, off);
    }
    /// 16-bit store.
    pub fn sh(&mut self, rs: IReg, base: IReg, off: i32) {
        self.store(MemSz::H, rs, base, off);
    }
    /// 32-bit store.
    pub fn sw(&mut self, rs: IReg, base: IReg, off: i32) {
        self.store(MemSz::W, rs, base, off);
    }
    /// 64-bit store.
    pub fn sd(&mut self, rs: IReg, base: IReg, off: i32) {
        self.store(MemSz::D, rs, base, off);
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, ra: IReg, b: impl Into<Operand2>, target: Label) {
        self.patches.push((self.code.len(), target));
        self.emit(Instr::Branch {
            cond,
            ra,
            b: b.into(),
            target: u32::MAX,
        });
    }
    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: Label) {
        self.patches.push((self.code.len(), target));
        self.emit(Instr::Jump { target: u32::MAX });
    }
    /// Terminates the program.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Bottom-tested loop: executes `body` while `i < end`, incrementing
    /// `i` by 1 per iteration.  `i` must be initialised before the call and
    /// the loop body runs **at least once** (like a compiler-generated
    /// `do-while` for a trip count known to be positive).
    pub fn for_loop(&mut self, i: IReg, end: impl Into<Operand2>, body: impl FnOnce(&mut Asm)) {
        self.for_loop_step(i, end, 1, body);
    }

    /// Bottom-tested loop with explicit step (see [`Asm::for_loop`]).
    pub fn for_loop_step(
        &mut self,
        i: IReg,
        end: impl Into<Operand2>,
        step: i32,
        body: impl FnOnce(&mut Asm),
    ) {
        let end = end.into();
        let head = self.label();
        self.bind(head);
        body(self);
        self.addi(i, i, step);
        self.branch(Cond::Lt, i, end, head);
    }

    /// Top-tested counted loop: `for i in start..end { body }` with a guard
    /// branch, safe for possibly-empty ranges.  Allocates and releases the
    /// induction register, passing it to `body`.
    pub fn for_range(
        &mut self,
        start: i64,
        end: impl Into<Operand2>,
        body: impl FnOnce(&mut Asm, IReg),
    ) {
        let end = end.into();
        let i = self.ireg();
        self.li(i, start);
        let exit = self.label();
        let head = self.label();
        self.branch(Cond::Ge, i, end, exit);
        self.bind(head);
        body(self, i);
        self.addi(i, i, 1);
        self.branch(Cond::Lt, i, end, head);
        self.bind(exit);
        self.release_ireg(i);
    }

    /// `if cond(ra, b) { then }`.
    pub fn if_(
        &mut self,
        cond: Cond,
        ra: IReg,
        b: impl Into<Operand2>,
        then: impl FnOnce(&mut Asm),
    ) {
        let skip = self.label();
        self.branch(cond.negated(), ra, b, skip);
        then(self);
        self.bind(skip);
    }

    /// `if cond(ra, b) { then } else { otherwise }`.
    pub fn if_else(
        &mut self,
        cond: Cond,
        ra: IReg,
        b: impl Into<Operand2> + Copy,
        then: impl FnOnce(&mut Asm),
        otherwise: impl FnOnce(&mut Asm),
    ) {
        let els = self.label();
        let done = self.label();
        self.branch(cond.negated(), ra, b, els);
        then(self);
        self.jump(done);
        self.bind(els);
        otherwise(self);
        self.bind(done);
    }

    /// Top-tested while loop: repeats `body` while `cond(ra, b)` holds.
    pub fn while_(
        &mut self,
        cond: Cond,
        ra: IReg,
        b: impl Into<Operand2> + Copy,
        body: impl FnOnce(&mut Asm),
    ) {
        let head = self.label();
        let exit = self.label();
        self.bind(head);
        self.branch(cond.negated(), ra, b, exit);
        body(self);
        self.jump(head);
        self.bind(exit);
    }

    // ------------------------------------------------------------------
    // Floating point
    // ------------------------------------------------------------------

    /// Floating-point ALU operation.
    pub fn fop(&mut self, op: FOp, fd: FReg, fa: FReg, fb: FReg) {
        self.emit(Instr::FpOp { op, fd, fa, fb });
    }
    /// Floating-point load.
    pub fn fld(&mut self, fd: FReg, base: IReg, off: i32) {
        self.emit(Instr::FpLoad { fd, base, off });
    }
    /// Floating-point store.
    pub fn fst(&mut self, fs: FReg, base: IReg, off: i32) {
        self.emit(Instr::FpStore { fs, base, off });
    }
    /// Integer→double conversion.
    pub fn cvt_if(&mut self, fd: FReg, ra: IReg) {
        self.emit(Instr::CvtIF { fd, ra });
    }
    /// Double→integer conversion.
    pub fn cvt_fi(&mut self, rd: IReg, fa: FReg) {
        self.emit(Instr::CvtFI { rd, fa });
    }

    // ------------------------------------------------------------------
    // 1-word SIMD
    // ------------------------------------------------------------------

    /// Element-wise SIMD operation.
    pub fn simd(&mut self, op: VOp, dst: impl Into<VLoc>, a: impl Into<VLoc>, b: impl Into<VLoc>) {
        self.emit(Instr::Simd {
            op,
            dst: dst.into(),
            a: a.into(),
            b: b.into(),
        });
    }
    /// Element-wise shift by immediate.
    pub fn vshift(&mut self, op: VShiftOp, dst: impl Into<VLoc>, src: impl Into<VLoc>, amount: u8) {
        self.emit(Instr::SimdShift {
            op,
            dst: dst.into(),
            src: src.into(),
            amount,
        });
    }
    /// SIMD move.
    pub fn vmov(&mut self, dst: impl Into<VLoc>, src: impl Into<VLoc>) {
        self.emit(Instr::VMov {
            dst: dst.into(),
            src: src.into(),
        });
    }
    /// Broadcast scalar into all elements.
    pub fn vsplat(&mut self, dst: impl Into<VLoc>, src: IReg, esz: Esz) {
        self.emit(Instr::VSplat {
            dst: dst.into(),
            src,
            esz,
        });
    }
    /// Extract element `lane` into a scalar register.
    pub fn movsv(&mut self, rd: IReg, src: impl Into<VLoc>, lane: u8, esz: Esz, sext: bool) {
        self.emit(Instr::MovSV {
            rd,
            src: src.into(),
            lane,
            esz,
            sext,
        });
    }
    /// Insert a scalar into element `lane`.
    pub fn movvs(&mut self, dst: impl Into<VLoc>, src: IReg, lane: u8, esz: Esz) {
        self.emit(Instr::MovVS {
            dst: dst.into(),
            src,
            lane,
            esz,
        });
    }
    /// SIMD load of `bytes` bytes.
    pub fn vload(&mut self, dst: impl Into<VLoc>, base: IReg, off: i32, bytes: u8) {
        self.emit(Instr::VLoad {
            dst: dst.into(),
            base,
            off,
            bytes,
        });
    }
    /// SIMD store of `bytes` bytes.
    pub fn vstore(&mut self, src: impl Into<VLoc>, base: IReg, off: i32, bytes: u8) {
        self.emit(Instr::VStore {
            src: src.into(),
            base,
            off,
            bytes,
        });
    }

    // ------------------------------------------------------------------
    // Matrix extension
    // ------------------------------------------------------------------

    /// Sets the vector length.
    pub fn setvl(&mut self, src: impl Into<Operand2>) {
        self.emit(Instr::SetVl { src: src.into() });
    }
    /// Strided matrix load.
    pub fn mload(&mut self, dst: MReg, base: IReg, stride: impl Into<Operand2>, row_bytes: u8) {
        self.emit(Instr::MLoad {
            dst,
            base,
            stride: stride.into(),
            row_bytes,
        });
    }
    /// Strided matrix store.
    pub fn mstore(&mut self, src: MReg, base: IReg, stride: impl Into<Operand2>, row_bytes: u8) {
        self.emit(Instr::MStore {
            src,
            base,
            stride: stride.into(),
            row_bytes,
        });
    }
    /// Full-VL element-wise matrix operation.
    pub fn mop(&mut self, op: VOp, dst: MReg, a: MReg, b: impl Into<MOperand>) {
        self.emit(Instr::MOp {
            op,
            dst,
            a,
            b: b.into(),
        });
    }
    /// Full-VL shift by immediate.
    pub fn mshift(&mut self, op: VShiftOp, dst: MReg, src: MReg, amount: u8) {
        self.emit(Instr::MShift {
            op,
            dst,
            src,
            amount,
        });
    }
    /// Broadcast scalar into all rows/elements.
    pub fn msplat(&mut self, dst: MReg, src: IReg, esz: Esz) {
        self.emit(Instr::MSplat { dst, src, esz });
    }
    /// Matrix move.
    pub fn mmov(&mut self, dst: MReg, src: MReg) {
        self.emit(Instr::MMov { dst, src });
    }
    /// Matrix transpose.
    pub fn mtrans(&mut self, dst: MReg, src: MReg, esz: Esz) {
        self.emit(Instr::MTranspose { dst, src, esz });
    }
    /// Full-VL accumulator operation.
    pub fn macc(&mut self, op: AccOp, acc: AReg, a: MReg, b: MReg) {
        self.emit(Instr::MAcc { op, acc, a, b });
    }
    /// Single-word accumulator operation.
    pub fn vacc(&mut self, op: AccOp, acc: AReg, a: impl Into<VLoc>, b: impl Into<VLoc>) {
        self.emit(Instr::VAcc {
            op,
            acc,
            a: a.into(),
            b: b.into(),
        });
    }
    /// Reduces an accumulator into a scalar register.
    pub fn accsum(&mut self, rd: IReg, acc: AReg) {
        self.emit(Instr::AccSum { rd, acc });
    }
    /// Clears an accumulator.
    pub fn accclear(&mut self, acc: AReg) {
        self.emit(Instr::AccClear { acc });
    }
    /// Packs accumulator lanes into a SIMD word.
    pub fn accpack(&mut self, dst: impl Into<VLoc>, acc: AReg, esz: Esz, sat: Sat, shift: u8) {
        self.emit(Instr::AccPack {
            dst: dst.into(),
            acc,
            esz,
            sat,
            shift,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdsim_isa::Class;

    #[test]
    fn loop_shapes() {
        let mut a = Asm::new();
        let i = a.ireg();
        let n = a.arg(0);
        a.li(i, 0);
        a.for_loop(i, n, |a| {
            a.nop_marker();
        });
        a.halt();
        let p = a.finish();
        // li, nop, addi, branch, halt
        assert_eq!(p.len(), 5);
        p.validate(false).unwrap();
    }

    impl Asm {
        fn nop_marker(&mut self) {
            self.emit(Instr::Nop);
        }
    }

    #[test]
    fn if_else_targets_resolve() {
        let mut a = Asm::new();
        let x = a.arg(0);
        a.if_else(
            Cond::Eq,
            x,
            0,
            |a| a.li(IReg::new(9), 1),
            |a| a.li(IReg::new(9), 2),
        );
        a.halt();
        let p = a.finish();
        p.validate(false).unwrap();
        // branch, li, jump, li, halt
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn vector_region_tagging() {
        let mut a = Asm::new();
        a.li(a.arg(0), 1);
        a.vector_region(|a| {
            let v = a.vreg();
            a.simd(VOp::Add(Esz::B), v, v, v);
        });
        a.halt();
        let p = a.finish();
        assert_eq!(p.regions()[0], Region::Scalar);
        assert_eq!(p.regions()[1], Region::Vector);
        assert_eq!(p.regions()[2], Region::Scalar);
        assert_eq!(p.code()[1].class(), Class::VArith);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.jump(l);
        let _ = a.finish();
    }

    #[test]
    fn while_and_for_range() {
        let mut a = Asm::new();
        let n = a.arg(0);
        let acc = a.arg(1);
        a.li(acc, 0);
        a.for_range(0, n, |a, i| {
            a.add(acc, acc, i);
        });
        let c = a.ireg();
        a.li(c, 3);
        a.while_(Cond::Gt, c, 0, |a| {
            a.subi(c, c, 1);
        });
        a.halt();
        let p = a.finish();
        p.validate(false).unwrap();
    }
}
