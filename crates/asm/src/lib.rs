//! Structured macro-assembler for the `simdsim` ISA.
//!
//! Kernels and applications in this workspace are written against this
//! builder — the moral equivalent of the paper's C-with-emulation-macros
//! sources.  The builder provides:
//!
//! * emitter methods for every instruction of [`simdsim_isa`];
//! * symbolic labels with late binding ([`Asm::label`] / [`Asm::bind`]);
//! * structured control flow ([`Asm::for_range`], [`Asm::if_`],
//!   [`Asm::while_`]) that lowers to the scalar branches whose overhead the
//!   paper measures;
//! * a register allocator for scratch registers per register file;
//! * region tagging ([`Asm::vector_region`]) separating vectorised kernel
//!   code from scalar application code (Figure 6 of the paper).
//!
//! # Example
//!
//! Sum the bytes of an array with a scalar loop:
//!
//! ```
//! use simdsim_asm::Asm;
//! use simdsim_isa::{Cond, MemSz};
//!
//! let mut a = Asm::new();
//! let ptr = a.arg(0); // r0 = array base
//! let n = a.arg(1);   // r1 = length
//! let sum = a.arg(2); // r2 = result
//! let i = a.ireg();
//! let t = a.ireg();
//! a.li(sum, 0);
//! a.li(i, 0);
//! a.for_loop(i, n, |a| {
//!     a.load(MemSz::B, false, t, ptr, 0);
//!     a.add(sum, sum, t);
//!     a.addi(ptr, ptr, 1);
//! });
//! a.halt();
//! let prog = a.finish();
//! assert!(prog.validate(false).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod ralloc;

pub use builder::{Asm, Label};
pub use ralloc::RegPool;

/// Assembler revision, part of `simdsim-sweep`'s content-addressed
/// cache key.  Bump whenever code generation or register allocation
/// changes the emitted programs, so cached results from older builds are
/// never reused.
pub const REVISION: u32 = 1;
