//! Scratch-register pools.

/// A simple stack allocator over register indices `lo..hi`.
///
/// Used for scratch registers while building programs; allocation order is
/// deterministic so generated programs are reproducible.
#[derive(Debug, Clone)]
pub struct RegPool {
    free: Vec<u8>,
    lo: u8,
    hi: u8,
}

impl RegPool {
    /// Creates a pool handing out indices in `lo..hi` (ascending).
    #[must_use]
    pub fn new(lo: u8, hi: u8) -> Self {
        assert!(lo <= hi, "invalid register pool range");
        Self {
            free: (lo..hi).rev().collect(),
            lo,
            hi,
        }
    }

    /// Allocates the lowest free index.
    ///
    /// # Panics
    ///
    /// Panics when the pool is exhausted — generated programs must fit the
    /// architectural register file, like compiled code would.
    pub fn alloc(&mut self) -> u8 {
        self.free.pop().expect("register pool exhausted")
    }

    /// Returns an index to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the pool range or already free
    /// (double free).
    pub fn release(&mut self, idx: u8) {
        assert!(
            idx >= self.lo && idx < self.hi,
            "register {idx} not part of this pool"
        );
        assert!(!self.free.contains(&idx), "register {idx} double-freed");
        self.free.push(idx);
        // Keep allocation order deterministic (lowest index next).
        self.free.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Number of currently free registers.
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_cycle() {
        let mut p = RegPool::new(8, 12);
        assert_eq!(p.available(), 4);
        let a = p.alloc();
        let b = p.alloc();
        assert_eq!((a, b), (8, 9));
        p.release(a);
        assert_eq!(p.alloc(), 8);
        p.release(8);
        p.release(b);
        assert_eq!(p.available(), 4);
    }

    #[test]
    #[should_panic(expected = "double-freed")]
    fn double_free_panics() {
        let mut p = RegPool::new(0, 4);
        let a = p.alloc();
        p.release(a);
        p.release(a);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut p = RegPool::new(0, 1);
        let _ = p.alloc();
        let _ = p.alloc();
    }
}
