//! ISA explorer: assemble a small matrix-extension program, print its
//! disassembly, single-run it and inspect the architectural state — a
//! tour of the `asm`/`isa`/`emu` layers.
//!
//! ```sh
//! cargo run --release --example isa_explorer
//! ```

use simdsim::asm::Asm;
use simdsim::emu::{Machine, VecSink};
use simdsim_isa::{AccOp, Esz, Ext, MOperand, VOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8×8 16-bit tile: load it strided, scale every element by 3 with
    // a broadcast row, accumulate column sums, and reduce to a scalar.
    let mut a = Asm::new();
    let (src, dst, out) = (a.arg(0), a.arg(1), a.arg(2));
    let (m1, coef) = (a.mreg(), a.mreg());
    let acc = a.areg();
    let t = a.ireg();

    a.setvl(8);
    a.li(t, 3);
    a.msplat(coef, t, Esz::H);
    a.mload(m1, src, 16, 16);
    a.mop(VOp::Mullo(Esz::H), m1, m1, MOperand::RowBcast(coef, 0));
    a.mtrans(m1, m1, Esz::H);
    a.accclear(acc);
    a.macc(AccOp::AddH, acc, m1, m1);
    a.accsum(t, acc);
    a.sd(t, out, 0);
    a.mstore(m1, dst, 16, 16);
    a.halt();
    let program = a.finish();

    println!("=== disassembly ===");
    print!("{}", program.listing());
    println!("static mix: {:?}\n", program.static_class_counts());

    // Fill an 8×8 matrix with 0..64 and run.
    let values: Vec<i16> = (0..64).collect();
    let mut m = Machine::new(Ext::Vmmx128, 1 << 16);
    m.write_i16s(256, &values)?;
    m.set_ireg(0, 256);
    m.set_ireg(1, 1024);
    m.set_ireg(2, 4096);

    let mut sink = VecSink::default();
    let stats = m.run(&program, &mut sink, 10_000)?;

    println!("=== execution ===");
    println!("dynamic instructions : {}", stats.dyn_instrs);
    println!("element operations   : {}", stats.element_ops);
    let expect: i64 = values.iter().map(|v| 3 * i64::from(*v)).sum();
    let got = m.read_i32s(4096, 1)?[0];
    println!("memory result        : {got} (expected {expect})");
    assert_eq!(i64::from(got), expect);

    println!("\n=== first rows of the transposed, scaled tile ===");
    let out_rows = m.read_i16s(1024, 16)?;
    println!("{:?}", &out_rows[..8]);
    println!("{:?}", &out_rows[8..16]);

    println!("\n=== trace excerpt (matrix ops carry their VL) ===");
    for d in sink.trace.iter().take(12) {
        println!("  pc {:>2}  vl {:>2}  {}", d.pc, d.vl, d.instr);
    }
    Ok(())
}
