//! Quickstart: simulate one kernel on all four SIMD extensions and print
//! speed-ups — the smallest end-to-end use of the library.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simdsim::kernels::{by_name, Variant};
use simdsim::pipe::{simulate, PipeConfig};
use simdsim_isa::Ext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick a kernel from the paper's Table II.
    let kernel = by_name("motion1").ok_or("kernel not found")?;
    println!(
        "kernel: {} — {}",
        kernel.spec().name,
        kernel.spec().description
    );

    let mut baseline = None;
    for ext in Ext::ALL {
        // Build the workload in the matching ISA variant: program + memory
        // image + golden checker.
        let built = kernel.build(Variant::for_ext(ext));

        // Simulate it on the paper's 2-way processor for this extension.
        let cfg = PipeConfig::paper(2, ext);
        let (arch, timing) = simulate(&built.program, &built.machine, &cfg, u64::MAX)?;

        let base = *baseline.get_or_insert(timing.cycles);
        println!(
            "  {:<8}  {:>9} instrs  {:>9} cycles  ipc {:.2}  speedup {:>5.2}x",
            ext.name(),
            arch.dyn_instrs,
            timing.cycles,
            timing.ipc(),
            base as f64 / timing.cycles as f64,
        );
    }
    println!("\n(speed-ups are relative to 2-way MMX64, the paper's baseline)");
    Ok(())
}
