//! Writing a custom vectorised routine against the public API: a full
//! motion search over a reference frame using the VMMX128 matrix
//! extension (the paper's Figure 3(e) SAD code), run through both the
//! functional emulator and the timing model.
//!
//! ```sh
//! cargo run --release --example motion_estimation
//! ```

use simdsim::asm::Asm;
use simdsim::emu::{Layout, Machine};
use simdsim::kernels::data::smooth_plane;
use simdsim::pipe::{simulate, PipeConfig};
use simdsim_isa::{AccOp, Cond, Ext};

const W: usize = 128;
const H: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --------------------------------------------------------------
    // Build the program: a ±4-pel full search for one 16×16 block,
    // with the SAD inner loop written exactly like the paper's
    // VMMX128 example — two strided matrix loads and a packed
    // accumulator, no inner loops at all.
    // --------------------------------------------------------------
    let mut a = Asm::new();
    let (cur, refp, out) = (a.arg(0), a.arg(1), a.arg(2));
    let (best_sad, best_off) = (a.ireg(), a.ireg());
    let (p2, sad, stride) = (a.ireg(), a.ireg(), a.ireg());
    let (m1, m2) = (a.mreg(), a.mreg());
    let acc = a.areg();

    a.li(stride, W as i64);
    a.li(best_sad, i64::MAX);
    a.setvl(16);
    // The current block stays resident in a matrix register for the
    // whole search — "matrix registers as a cache".
    a.mload(m1, cur, stride, 16);
    for dy in -4i32..=4 {
        for dx in -4i32..=4 {
            let off = dy * W as i32 + dx;
            a.addi(p2, refp, off);
            a.vector_region(|a| {
                a.accclear(acc);
                a.mload(m2, p2, stride, 16);
                a.macc(AccOp::Sad, acc, m1, m2);
                a.accsum(sad, acc);
            });
            a.if_(Cond::Lt, sad, best_sad, |a| {
                a.mv(best_sad, sad);
                a.li(best_off, i64::from(off));
            });
        }
    }
    a.sd(best_sad, out, 0);
    a.sd(best_off, out, 8);
    a.halt();
    let program = a.finish();

    // --------------------------------------------------------------
    // Lay out memory: a frame and a reference shifted by (2, -3).
    // --------------------------------------------------------------
    let frame = smooth_plane(W, H, 7);
    let mut reference = vec![0u8; W * H];
    for y in 0..H {
        for x in 0..W {
            let sx = (x as i32 - 2).rem_euclid(W as i32) as usize;
            let sy = (y as i32 + 3).rem_euclid(H as i32) as usize;
            reference[y * W + x] = frame[sy * W + sx];
        }
    }

    let mut layout = Layout::new(1 << 20);
    let cur_addr = layout.alloc_array((W * H) as u64, 1);
    let ref_addr = layout.alloc_array((W * H) as u64, 1);
    let out_addr = layout.alloc_array(16, 8);

    let mut machine = Machine::new(Ext::Vmmx128, 1 << 20);
    machine.write_bytes(cur_addr, &frame)?;
    machine.write_bytes(ref_addr, &reference)?;
    // Search around the block at (32, 24).
    let block_off = (24 * W + 32) as i64;
    machine.set_ireg(0, cur_addr as i64 + block_off);
    machine.set_ireg(1, ref_addr as i64 + block_off);
    machine.set_ireg(2, out_addr as i64);

    // --------------------------------------------------------------
    // Simulate on the 2-way VMMX128 processor.
    // --------------------------------------------------------------
    let cfg = PipeConfig::paper(2, Ext::Vmmx128);
    let (arch, timing) = simulate(&program, &machine, &cfg, u64::MAX)?;

    // Re-run functionally to read the result out of memory.
    let mut m = machine.clone();
    m.run(&program, &mut simdsim::emu::NullSink, u64::MAX)?;
    let res = m.read_i32s(out_addr, 4)?;
    let (sad, off) = (res[0], res[2]);
    let (dy, dx) = (off.div_euclid(W as i32), off.rem_euclid(W as i32));
    let (dy, dx) = if dx > 4 {
        (dy + 1, dx - W as i32)
    } else {
        (dy, dx)
    };

    println!("81-candidate full search over a {W}x{H} frame (VMMX128, 2-way):");
    println!("  best offset  : ({dx:+}, {dy:+})  (planted motion was (+2, -3))");
    println!("  best SAD     : {sad}");
    println!("  instructions : {}", arch.dyn_instrs);
    println!("  cycles       : {}", timing.cycles);
    println!("  IPC          : {:.2}", timing.ipc());
    println!(
        "  vector cycles: {} ({:.0}%)",
        timing.vector_region_cycles,
        100.0 * timing.vector_region_cycles as f64
            / (timing.vector_region_cycles + timing.scalar_region_cycles) as f64
    );
    Ok(())
}
