//! A complete application under the microscope: run the MPEG-2-style
//! encoder on every extension × width and reproduce the paper's
//! headline comparison (a simple matrix-extension processor versus an
//! aggressive 1-D SIMD one).
//!
//! ```sh
//! cargo run --release --example video_pipeline
//! ```

use simdsim::kernels::Variant;
use simdsim::pipe::{simulate, PipeConfig};
use simdsim_isa::Ext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = simdsim_apps::by_name("mpeg2enc").ok_or("app not found")?;
    println!(
        "application: {} — {}\n",
        app.spec().name,
        app.spec().description
    );
    println!(
        "{:<6} {:<9} {:>10} {:>12} {:>8} {:>7}",
        "way", "ext", "instrs", "cycles", "speedup", "vector%"
    );

    let mut baseline = None;
    let mut cells = Vec::new();
    for way in [2usize, 4, 8] {
        for ext in Ext::ALL {
            let built = app.build(Variant::for_ext(ext));
            let cfg = PipeConfig::paper(way, ext);
            let (_, t) = simulate(&built.program, &built.machine, &cfg, u64::MAX)?;
            if way == 2 && ext == Ext::Mmx64 {
                baseline = Some(t.cycles);
            }
            let base = baseline.expect("baseline computed first");
            println!(
                "{:<6} {:<9} {:>10} {:>12} {:>7.2}x {:>6.0}%",
                way,
                ext.name(),
                t.instrs,
                t.cycles,
                base as f64 / t.cycles as f64,
                100.0 * t.vector_region_cycles as f64
                    / (t.vector_region_cycles + t.scalar_region_cycles) as f64,
            );
            cells.push((way, ext, t.cycles));
        }
    }

    let get = |w: usize, e: Ext| {
        cells
            .iter()
            .find(|(cw, ce, _)| *cw == w && *ce == e)
            .map(|(_, _, c)| *c)
            .expect("cell simulated")
    };
    println!(
        "\nThe paper's complexity argument: the 2-way VMMX128 core reaches {:.0}% of the\n\
         8-way MMX128 core's performance with a fraction of its register-file area.",
        100.0 * get(8, Ext::Mmx128) as f64 / get(2, Ext::Vmmx128) as f64
    );
    Ok(())
}
