#!/usr/bin/env bash
# Fleet smoke: boot a coordinator plus two sweepctl worker processes,
# shard a sweep across them, and assert the statistics are bit-identical
# to the committed single-process golden fixture — then kill one worker
# mid-job and assert the coordinator re-queues its cells and the final
# statistics are STILL golden.  Also round-trips a store snapshot through
# `sweepctl store export`.  Shared by `just fleet-smoke` and the CI
# `fleet-smoke` job so they cannot drift.
set -euo pipefail

PORT="${FLEET_SMOKE_PORT:-8952}"
ADDR="127.0.0.1:${PORT}"
ROOT="target/fleet-smoke"
rm -rf "${ROOT}"
mkdir -p "${ROOT}/coord" "${ROOT}/w1" "${ROOT}/w2"

cargo build --release --locked -p simdsim-serve -p simdsim-client

# Short heartbeat so eviction of the killed worker (3 missed intervals)
# is fast enough for a smoke test.
target/release/serve --addr "${ADDR}" --jobs 2 \
  --cache-dir "${ROOT}/coord" --fleet-heartbeat-ms 200 &
SERVE_PID=$!
W1_PID=""
W2_PID=""
cleanup() {
  # Workers first, so they exit before their coordinator disappears.
  kill ${W1_PID} ${W2_PID} 2>/dev/null || true
  sleep 0.2
  kill "${SERVE_PID}" 2>/dev/null || true
}
trap cleanup EXIT

SWEEPCTL="target/release/sweepctl --addr ${ADDR}"
for _ in $(seq 1 40); do
  ${SWEEPCTL} health >/dev/null 2>&1 && break
  sleep 0.5
done
${SWEEPCTL} health | grep -q 'api v1'

target/release/sweepctl --addr "${ADDR}" --json \
  worker --name w1 --slots 2 --cache-dir "${ROOT}/w1" --warm-start &
W1_PID=$!
target/release/sweepctl --addr "${ADDR}" --json \
  worker --name w2 --slots 2 --cache-dir "${ROOT}/w2" --warm-start &
W2_PID=$!
# Keep bash quiet about the deliberate mid-job SIGKILL of w2 later on.
disown ${W1_PID} ${W2_PID}

# Both workers must be live before the sweep is submitted, or the
# coordinator would fall back to in-process execution.
live_workers() {
  ${SWEEPCTL} --json fleet status \
    | python3 -c 'import json,sys; f=json.load(sys.stdin); print(sum(1 for w in f["workers"] if w["live"]))'
}
for _ in $(seq 1 40); do
  [ "$(live_workers)" -ge 2 ] && break
  sleep 0.5
done
[ "$(live_workers)" -ge 2 ] || { echo "fleet never reached 2 live workers"; exit 1; }

# Polls a job to completion, then asserts every cell's statistics are
# bit-identical to tests/golden/pipestats.json (argv: job id, cell count).
wait_and_assert_golden() {
  local job_id=$1 cells=$2 status_file="${ROOT}/status.json"
  for _ in $(seq 1 600); do
    ${SWEEPCTL} --json status "${job_id}" > "${status_file}"
    grep -q '"state":"done"' "${status_file}" && break
    if grep -qE '"state":"(failed|cancelled)"' "${status_file}"; then
      echo "job ${job_id} ended abnormally:"; cat "${status_file}"; exit 1
    fi
    sleep 0.5
  done
  python3 - "${status_file}" "${cells}" <<'EOF'
import json, sys
status = json.load(open(sys.argv[1]))
assert status["state"] == "done", f"job state {status['state']}"
result = status["result"]
assert result["failed"] == 0, f"{result['failed']} failed cells"
cells = result["cells"]
assert len(cells) == int(sys.argv[2]), f"expected {sys.argv[2]} cells, got {len(cells)}"
golden = json.load(open("tests/golden/pipestats.json"))
fields = [("cycles", "cycles"), ("instrs", "instrs"), ("counts", "counts"),
          ("branches", "branches"), ("mispredicts", "mispredicts"),
          ("vector_cycles", "vector_region_cycles"),
          ("scalar_cycles", "scalar_region_cycles"),
          ("l1", "l1"), ("l2", "l2"), ("memsys", "memsys")]
for cell in cells:
    g = golden[cell["label"]]
    s = cell["stats"]
    for served, gold in fields:
        assert s[served] == g[gold], \
            f"{cell['label']}: sharded `{served}`={s[served]} != golden `{gold}`={g[gold]}"
print(f"job {status['id']}: {len(cells)} cells bit-identical to the golden fixture")
EOF
}

job_id() { python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'; }

# Phase 1: shard fig4 /idct/ across both workers; statistics must be
# bit-identical to the single-process golden fixture.
SUB1=$(${SWEEPCTL} --json submit --scenario fig4 --filter /idct/)
JOB1=$(echo "${SUB1}" | job_id)
TRACE1=$(echo "${SUB1}" | python3 -c 'import json,sys; print(json.load(sys.stdin)["trace"])')
wait_and_assert_golden "${JOB1}" 4

# The workers (not the coordinator) did the simulating.
${SWEEPCTL} --json fleet status | python3 -c '
import json, sys
fleet = json.load(sys.stdin)
done = sum(w["completed"] for w in fleet["workers"])
assert done >= 4, f"fleet completed only {done} cells"
print(f"fleet completed {done} cells across {len(fleet['"'"'workers'"'"'])} workers")'

# The sharded job's aggregated CPI stack, through the sweepctl profile
# command: every commit slot must be accounted for (issue + stalls ==
# cycles × way) even though the cells were simulated by two separate
# worker processes and merged on the coordinator.
${SWEEPCTL} --json profile "${JOB1}" > "${ROOT}/profile.json"
python3 - "${ROOT}/profile.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["state"] == "done", f"profile cut at state {doc['state']}"
assert doc["cells"] == 4, f"expected 4 profiled cells, got {doc['cells']}"
assert doc["missing"] == 0, f"{doc['missing']} cells came back without a stack"
p = doc["profile"]
assert p is not None, "aggregate profile missing"
stalls = sum(e["slots"] for e in p["stalls"])
assert p["issue"] + stalls == p["slots"], \
    f"CPI stack does not sum to total: {p['issue']} + {stalls} != {p['slots']}"
assert p["way"] > 0 and p["slots"] == p["cycles"] * p["way"], \
    f"slots {p['slots']} != cycles {p['cycles']} x way {p['way']}"
print(f"job {doc['id']} profile: {p['slots']} slots fully attributed "
      f"({p['issue']} issue + {stalls} stalled), cpi {p['cpi']:.3f}")
EOF

# The submission's trace id must link the whole fan-out in the flight
# recorder: coordinator spans (submit, start, lease grant/report, finish)
# AND the unit spans the workers shipped back with their reports.
curl -sf "http://${ADDR}/v1/debug/events?trace=${TRACE1}" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
kinds = {e["kind"] for e in doc["events"]}
for needed in ("job.submit", "job.start", "lease.grant", "lease.report",
               "worker.unit", "job.finish"):
    assert needed in kinds, f"trace is missing {needed}: {sorted(kinds)}"
units = [e for e in doc["events"] if e["kind"] == "worker.unit"]
assert all(e.get("worker") is not None for e in units), "unit spans need worker ids"
print(f"trace links {len(doc['"'"'events'"'"'])} events, "
      f"{len(units)} worker unit spans")'

# Phase 2: workers die mid-job.  Register a wire-level worker that leases
# a batch of cells and then goes silent forever — a deterministic mid-job
# death, whatever the cell execution speed — AND kill the real w2 process
# while the job runs.  The coordinator must evict both, re-queue their
# cells, and the surviving worker must still finish the job golden.
BASE="http://${ADDR}"
DOOMED=$(curl -sf -X POST -d '{"name":"doomed","slots":8}' \
  "${BASE}/v1/workers/register" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["worker_id"])')
# Open the lease long-poll BEFORE submitting: the pending poll keeps the
# doomed worker live (an open poll refreshes liveness) and is granted
# cells the instant the job's queue fills, so the grant cannot be raced
# by fast cells or by heartbeat eviction.
curl -sf -X POST -d '{"max_cells":8,"wait_ms":15000}' \
  "${BASE}/v1/workers/${DOOMED}/lease" > "${ROOT}/doomed-lease.json" &
LEASE_CURL=$!
JOB2=$(${SWEEPCTL} --json submit --scenario fig4 | job_id)
wait "${LEASE_CURL}"
LEASED=$(python3 -c 'import json,sys; l=json.load(open(sys.argv[1]))["lease"]; print(len(l["cells"]) if l else 0)' "${ROOT}/doomed-lease.json")
[ "${LEASED}" -gt 0 ] || { echo "the doomed worker leased no cells"; exit 1; }
echo "doomed worker ${DOOMED} leased ${LEASED} cell(s) and went silent"
kill -9 "${W2_PID}"
W2_PID=""
echo "killed worker w2 mid-job"
wait_and_assert_golden "${JOB2}" 44

# The coordinator noticed: both dead workers evicted, and the doomed
# worker's leased cells re-queued (and completed elsewhere — the job
# above finished golden).  Eviction fires three heartbeat intervals
# after the last sign of life, so poll briefly rather than racing it.
for _ in $(seq 1 40); do
  METRICS=$(curl -sf "${BASE}/metrics")
  EVICTED=$(echo "${METRICS}" | sed -n 's/^simdsim_fleet_workers_total{event="evicted"} //p')
  [ "${EVICTED:-0}" -ge 2 ] && break
  sleep 0.5
done
[ "${EVICTED:-0}" -ge 2 ] || { echo "expected 2 evictions, metrics say ${EVICTED:-0}"; exit 1; }
REQUEUED=$(echo "${METRICS}" | sed -n 's/^simdsim_fleet_cells_total{event="requeued"} //p')
[ "${REQUEUED:-0}" -ge "${LEASED}" ] || { echo "only ${REQUEUED:-0} cells re-queued, expected >= ${LEASED}"; exit 1; }

# The coordinator's store now holds every fig4 cell; the snapshot surface
# must export them all.
${SWEEPCTL} --json store export | python3 -c '
import json, sys
snap = json.load(sys.stdin)
assert len(snap["entries"]) >= 44, f"snapshot has only {len(snap['"'"'entries'"'"'])} entries"
print(f"store snapshot: {len(snap['"'"'entries'"'"'])} entries (schema {snap['"'"'schema'"'"']})")'

echo "fleet-smoke ok"
