#!/usr/bin/env python3
"""Fail when serving latency regresses versus the committed baseline.

Usage: check-loadgen-regression.py FRESH_BENCH_JSON [BASELINE_BENCH_JSON]

Compares the fresh ``loadgen`` summary's submit/complete p99 against the
committed ``BENCH_simdsim.json`` trajectory and exits non-zero when either
exceeds ``FACTOR`` (default 2.0) times the baseline.  An absolute floor
(``FLOOR_MS``) keeps microsecond-level baselines from turning scheduler
jitter into failures on slow CI runners.
"""

import json
import os
import sys

FACTOR = float(os.environ.get("LOADGEN_REGRESSION_FACTOR", "2.0"))
FLOOR_MS = float(os.environ.get("LOADGEN_REGRESSION_FLOOR_MS", "50.0"))


def p99s(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    loadgen = doc.get("loadgen")
    if not loadgen:
        sys.exit(f"{path}: no 'loadgen' section — run the loadgen bench first")
    return {
        "submit": loadgen["submit_ms"]["p99"],
        "complete": loadgen["complete_ms"]["p99"],
    }


def main() -> int:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    fresh_path = sys.argv[1]
    baseline_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_simdsim.json"
    fresh, baseline = p99s(fresh_path), p99s(baseline_path)

    failed = False
    for phase in ("submit", "complete"):
        limit = max(baseline[phase] * FACTOR, FLOOR_MS)
        status = "ok" if fresh[phase] <= limit else "REGRESSION"
        failed |= fresh[phase] > limit
        print(
            f"{phase:<8} p99 {fresh[phase]:8.2f}ms  "
            f"baseline {baseline[phase]:8.2f}ms  "
            f"limit {limit:8.2f}ms  {status}"
        )
    if failed:
        print(
            f"serving p99 regressed more than {FACTOR}x over the committed "
            f"baseline ({baseline_path})"
        )
        return 1
    print("loadgen regression check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
