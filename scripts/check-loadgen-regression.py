#!/usr/bin/env python3
"""Fail when serving latency regresses versus the committed baseline.

Usage: check-loadgen-regression.py FRESH_BENCH_JSON [BASELINE_BENCH_JSON]
                                   [--section NAME]

Compares the fresh ``loadgen`` summary's submit/complete p99 against the
committed ``BENCH_simdsim.json`` trajectory and exits non-zero when either
exceeds ``FACTOR`` (default 2.0) times the baseline.  ``--section`` picks
the artifact key to compare (``loadgen`` for the local-pool profile,
``loadgen_fleet`` for the ``loadgen --fleet N`` sharded profile).  An
absolute floor (``FLOOR_MS``) keeps microsecond-level baselines from
turning scheduler jitter into failures on slow CI runners.
"""

import json
import os
import sys

FACTOR = float(os.environ.get("LOADGEN_REGRESSION_FACTOR", "2.0"))
FLOOR_MS = float(os.environ.get("LOADGEN_REGRESSION_FLOOR_MS", "50.0"))


def p99s(path: str, section: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    loadgen = doc.get(section)
    if not loadgen:
        sys.exit(
            f"{path}: no '{section}' section — run the matching loadgen "
            "profile first"
        )
    return {
        "submit": loadgen["submit_ms"]["p99"],
        "complete": loadgen["complete_ms"]["p99"],
    }


def main() -> int:
    section = "loadgen"
    paths = []
    args = iter(sys.argv[1:])
    for arg in args:
        if arg == "--section":
            section = next(args, None) or sys.exit("--section needs a value")
        else:
            paths.append(arg)
    if not paths:
        sys.exit(__doc__)
    fresh_path = paths[0]
    baseline_path = paths[1] if len(paths) > 1 else "BENCH_simdsim.json"
    fresh = p99s(fresh_path, section)
    baseline = p99s(baseline_path, section)

    failed = False
    for phase in ("submit", "complete"):
        limit = max(baseline[phase] * FACTOR, FLOOR_MS)
        status = "ok" if fresh[phase] <= limit else "REGRESSION"
        failed |= fresh[phase] > limit
        print(
            f"[{section}] {phase:<8} p99 {fresh[phase]:8.2f}ms  "
            f"baseline {baseline[phase]:8.2f}ms  "
            f"limit {limit:8.2f}ms  {status}"
        )
    if failed:
        print(
            f"`{section}` p99 regressed more than {FACTOR}x over the "
            f"committed baseline ({baseline_path})"
        )
        return 1
    print(f"loadgen regression check ok ({section})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
