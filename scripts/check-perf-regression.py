#!/usr/bin/env python3
"""Fail when simulation throughput regresses versus the committed baseline.

Usage: check-perf-regression.py FRESH_BENCH_JSON [BASELINE_BENCH_JSON]
                                [--min-ratio R]

Compares the fresh ``perf`` artifact's instruction-weighted MIPS against
the committed ``BENCH_simdsim.json`` trajectory and exits non-zero when
the fresh number falls below ``R`` (default 0.8) times the baseline.

The comparison runs over the *intersection* of cell labels, so a quick
(fig4-only) fresh run gates correctly against a full committed baseline.
Schema-tolerant reader: version-2 artifacts carry a setup-excluded
``simulate_ms`` per cell and are compared on core MIPS; when either side
is a version-1 artifact (wall time only), both sides fall back to
wall-clock MIPS so the two numbers measure the same thing.
"""

import json
import os
import sys

DEFAULT_MIN_RATIO = float(os.environ.get("PERF_REGRESSION_MIN_RATIO", "0.8"))


def load_cells(path: str) -> dict:
    """``label -> {instrs, wall_ms, simulate_ms|None}`` of one artifact."""
    with open(path) as f:
        doc = json.load(f)
    cells = doc.get("cells")
    if not cells:
        sys.exit(f"{path}: no 'cells' section — run the perf bench first")
    return {
        c["label"]: {
            "instrs": c["instrs"],
            "wall_ms": c["wall_ms"],
            "simulate_ms": c.get("simulate_ms"),
        }
        for c in cells
    }


def weighted_mips(cells: dict, labels, key: str) -> float:
    instrs = sum(cells[l]["instrs"] for l in labels)
    ms = sum(cells[l][key] for l in labels)
    return instrs / (ms / 1e3) / 1e6 if ms > 0 else 0.0


def main() -> int:
    min_ratio = DEFAULT_MIN_RATIO
    paths = []
    args = iter(sys.argv[1:])
    for arg in args:
        if arg == "--min-ratio":
            value = next(args, None) or sys.exit("--min-ratio needs a value")
            min_ratio = float(value)
        else:
            paths.append(arg)
    if not paths:
        sys.exit(__doc__)
    fresh_path = paths[0]
    baseline_path = paths[1] if len(paths) > 1 else "BENCH_simdsim.json"
    fresh = load_cells(fresh_path)
    baseline = load_cells(baseline_path)

    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        sys.exit(
            f"no cell labels shared between {fresh_path} and "
            f"{baseline_path} — nothing to compare"
        )

    # Core MIPS (setup-excluded) only when both artifacts carry it;
    # otherwise wall MIPS on both sides, so like compares with like.
    v2 = all(
        cells[l]["simulate_ms"] is not None
        for cells in (fresh, baseline)
        for l in shared
    )
    key, metric = ("simulate_ms", "core") if v2 else ("wall_ms", "wall")
    fresh_mips = weighted_mips(fresh, shared, key)
    base_mips = weighted_mips(baseline, shared, key)
    if base_mips <= 0:
        sys.exit(f"{baseline_path}: baseline {metric} MIPS is zero")

    ratio = fresh_mips / base_mips
    status = "ok" if ratio >= min_ratio else "REGRESSION"
    print(
        f"[perf] {metric} MIPS over {len(shared)} shared cells: "
        f"fresh {fresh_mips:8.2f}  baseline {base_mips:8.2f}  "
        f"ratio {ratio:5.2f} (min {min_ratio:.2f})  {status}"
    )
    if ratio < min_ratio:
        print(
            f"throughput fell below {min_ratio}x the committed baseline "
            f"({baseline_path})"
        )
        return 1
    print("perf regression check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
