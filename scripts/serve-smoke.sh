#!/usr/bin/env bash
# Serving-path smoke: boot the daemon, then drive it end-to-end through
# the typed client binary (sweepctl): health, scenario listing, submit +
# cursor-stream a sweep to completion, cancel a second queued job, list
# both, and scrape /metrics.  A final curl checks the deprecated
# unversioned aliases still answer.  Shared by `just serve-smoke` and the
# CI `serve-smoke` job so they cannot drift.
set -euo pipefail

PORT="${SERVE_SMOKE_PORT:-8951}"
BASE="http://127.0.0.1:${PORT}"
ADDR="127.0.0.1:${PORT}"

cargo build --release --locked -p simdsim-serve -p simdsim-client
target/release/serve --addr "${ADDR}" --jobs 2 &
SERVE_PID=$!
trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT

SWEEPCTL="target/release/sweepctl --addr ${ADDR}"
for _ in $(seq 1 40); do
  ${SWEEPCTL} health >/dev/null 2>&1 && break
  sleep 0.5
done
${SWEEPCTL} health | grep -q 'api v1'
${SWEEPCTL} scenarios | grep -q '^fig4'

# Submit + stream the per-cell results through the ?since= cursor; `run`
# exits non-zero unless the job ends `done`.
RUN_OUT=$(mktemp)
${SWEEPCTL} run --scenario fig4 --filter /idct/ | tee "${RUN_OUT}"
CELLS=$(grep -c 'cycles' "${RUN_OUT}")
[ "${CELLS}" -eq 4 ] || { echo "expected 4 streamed idct cells, got ${CELLS}"; exit 1; }
rm -f "${RUN_OUT}"

# Submit a second job and cancel it; the daemon must report it cancelled.
JOB_ID=$(${SWEEPCTL} submit --scenario fig5 | sed -n 's/^job \([0-9]*\).*/\1/p')
[ -n "${JOB_ID}" ] || { echo "no job id from submit"; exit 1; }
${SWEEPCTL} cancel "${JOB_ID}" | grep -qE 'cancelled|running'
# Cooperative cancellation settles between cells; poll briefly.
for _ in $(seq 1 240); do
  ${SWEEPCTL} status "${JOB_ID}" | grep -q '"state": "cancelled"' && break
  sleep 0.5
done
${SWEEPCTL} status "${JOB_ID}" | grep -q '"state": "cancelled"'

# Both jobs show up in the listing.
${SWEEPCTL} list | grep -q 'fig4'
${SWEEPCTL} list | grep -q 'cancelled'

# /metrics reports the completed and cancelled jobs in Prometheus format.
METRICS=$(curl -sf "${BASE}/metrics")
echo "${METRICS}" | grep -q 'simdsim_jobs_total{state="completed"} 1'
echo "${METRICS}" | grep -q 'simdsim_jobs_total{state="cancelled"} 1'
echo "${METRICS}" | grep -q '# TYPE simdsim_cache_hit_ratio gauge'
echo "${METRICS}" | grep -q 'simdsim_simulated_mips'

# The deprecated unversioned aliases still answer for legacy curl users.
curl -sf "${BASE}/healthz" | grep -q '"ok"'
curl -sf "${BASE}/scenarios" | grep -q '"fig4"'
curl -sf -X POST -d '{"scenario":"fig4","filter":"/idct/"}' "${BASE}/sweeps" \
  | grep -q '"url":"/v1/sweeps/'

echo "serve-smoke ok"
