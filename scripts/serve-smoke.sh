#!/usr/bin/env bash
# Serving-path smoke: boot the daemon, wait for /healthz, submit a small
# sweep, poll it to completion, scrape /metrics, shut down.  Shared by
# `just serve-smoke` and the CI `serve-smoke` job so they cannot drift.
set -euo pipefail

PORT="${SERVE_SMOKE_PORT:-8951}"
BASE="http://127.0.0.1:${PORT}"

cargo build --release --locked -p simdsim-serve
target/release/serve --addr "127.0.0.1:${PORT}" --jobs 2 &
SERVE_PID=$!
trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT

for _ in $(seq 1 40); do
  curl -sf "${BASE}/healthz" >/dev/null 2>&1 && break
  sleep 0.5
done
curl -sf "${BASE}/healthz" | grep -q '"ok"'
curl -sf "${BASE}/scenarios" | grep -q '"fig4"'

JOB_URL=$(curl -sf -X POST -d '{"scenario":"fig4","filter":"/idct/"}' "${BASE}/sweeps" \
  | python3 -c "import json,sys; print(json.load(sys.stdin)['url'])")
echo "submitted ${JOB_URL}"

STATE=queued
for _ in $(seq 1 240); do
  STATE=$(curl -sf "${BASE}${JOB_URL}" \
    | python3 -c "import json,sys; print(json.load(sys.stdin)['state'])")
  [ "${STATE}" = done ] && break
  [ "${STATE}" = failed ] && { echo "sweep failed"; curl -sf "${BASE}${JOB_URL}"; exit 1; }
  sleep 0.5
done
[ "${STATE}" = done ] || { echo "sweep did not finish (state=${STATE})"; exit 1; }

# The finished job must carry per-cell stats, and /metrics must report
# the completed job in Prometheus text format.
JOB_DOC=$(mktemp)
curl -sf "${BASE}${JOB_URL}" >"${JOB_DOC}"
python3 - "${JOB_DOC}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cells = doc["result"]["cells"]
assert len(cells) == 4, f"expected 4 idct cells, got {len(cells)}"
assert all(c["stats"]["cycles"] > 0 for c in cells), "cells missing stats"
print(f"{len(cells)} cells ok")
EOF
rm -f "${JOB_DOC}"
METRICS=$(curl -sf "${BASE}/metrics")
echo "${METRICS}" | grep -q 'simdsim_jobs_total{state="completed"} 1'
echo "${METRICS}" | grep -q '# TYPE simdsim_cache_hit_ratio gauge'
echo "${METRICS}" | grep -q 'simdsim_simulated_mips'
echo "serve-smoke ok"
